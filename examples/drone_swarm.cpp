/// Drone swarm example (paper §VI-B): a fleet of surveillance drones detects
/// a car, each estimating its position from a noisy bounding box + GPS, and
/// agrees on the location with two Delphi instances (one per coordinate) on
/// the CPS (Raspberry-Pi-class) network model.
///
/// One drone is compromised and reports positions 300 m away; the fleet's
/// agreed location must stay glued to the honest estimates.
///
/// Build: cmake --build build && ./build/examples/drone_swarm

#include <cstdio>

#include "drone/localize.hpp"
#include "sim/harness.hpp"
#include "sim/latency.hpp"

using namespace delphi;

int main() {
  const std::size_t n = 10;
  const std::size_t t = max_faults(n);

  drone::DetectionModel camera{drone::DetectionConfig{}};
  Rng world(42);

  // Three cars at different spots in the surveilled area.
  const drone::Vec2 cars[] = {{120.0, -35.0}, {-210.0, 400.0}, {0.0, 0.0}};

  drone::LocalizationProtocol::Config cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.params = protocol::DelphiParams::drone_cps();

  std::printf("car |        truth        |       agreed        |  error | "
              "spread(x)\n");
  std::printf("----+---------------------+---------------------+--------+-"
              "---------\n");

  for (std::size_t c = 0; c < 3; ++c) {
    auto observations = drone::fleet_observations(camera, cars[c], n, world);
    // Drone n-1 is compromised: it feeds a location 300 m off.
    observations[n - 1] = cars[c] + drone::Vec2{300.0, -300.0};

    sim::SimConfig net;
    net.n = n;
    net.seed = 500 + c;
    net.latency = std::make_shared<sim::CpsLanLatency>();
    net.cost = sim::CostModel::cps();

    sim::Simulator sim(net);
    for (NodeId i = 0; i < n; ++i) {
      sim.add_node(
          std::make_unique<drone::LocalizationProtocol>(cfg, observations[i]));
    }
    sim.set_byzantine({static_cast<NodeId>(n - 1)});
    if (!sim.run()) {
      std::printf("localization failed to terminate (bug!)\n");
      return 1;
    }

    // All honest drones agree on the position within eps per coordinate.
    double min_x = 1e300, max_x = -1e300;
    drone::Vec2 agreed{};
    for (NodeId i = 0; i + 1 < n; ++i) {
      const auto pos = *sim.node_as<drone::LocalizationProtocol>(i).position();
      agreed = pos;
      min_x = std::min(min_x, pos.x);
      max_x = std::max(max_x, pos.x);
    }
    std::printf("%3zu | (%8.2f, %8.2f) | (%8.2f, %8.2f) | %5.2fm | %.3fm\n",
                c, cars[c].x, cars[c].y, agreed.x, agreed.y,
                (agreed - cars[c]).norm(), max_x - min_x);
  }
  std::printf("\nThe compromised drone's 300 m decoy never moves the agreed "
              "position: its far-away checkpoints can't gather weight.\n");
  return 0;
}
