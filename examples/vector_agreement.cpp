/// Vector agreement: a drone swarm agrees on a 2D target position with
/// multi-dimensional Delphi — the paper's §VI-B construction ("drones use
/// two instances of Delphi to agree on each coordinate individually") as a
/// first-class API.
///
/// Ten drones each estimate the target's (x, y) from an object detector plus
/// GPS, both noisy; two of them are Byzantine and report a decoy position.
/// VectorDelphi runs one Delphi instance per coordinate over one shared
/// transport and produces a vector output with per-coordinate relaxed
/// validity (bounding-box validity) and eps-agreement.
///
/// Build: cmake --build build && ./build/examples/vector_agreement

#include <cmath>
#include <cstdio>

#include "multidim/vector_delphi.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "stats/distributions.hpp"

using namespace delphi;

int main() {
  const std::size_t n = 10;
  const std::size_t t = max_faults(n);  // 3

  // Per-coordinate parameters: 0.5 m checkpoints, Delta = 50 m (the paper's
  // CPS configuration).
  protocol::DelphiParams coord;
  coord.space_min = 0.0;
  coord.space_max = 2000.0;  // survey area, meters
  coord.rho0 = 0.5;
  coord.eps = 0.5;
  coord.delta_max = 50.0;
  auto cfg = multidim::VectorDelphiProtocol::Config::uniform(n, t, coord, 2);

  // Ground truth and noisy per-drone estimates (detector + GPS error, both
  // Gamma-flavored per Fig 5 / the FAA report).
  const double truth_x = 812.4, truth_y = 1033.9;
  Rng rng(99);
  // Combined detector+GPS radial error: Gamma(30.77, 0.18) is the paper's
  // fitted shape; the 0.35 factor below brings the mean to ~2 m per axis.
  const stats::Gamma err(/*shape=*/30.77, /*scale=*/0.18);
  std::vector<std::vector<double>> estimates(n, std::vector<double>(2));
  for (std::size_t i = 0; i < n; ++i) {
    const double r = err.sample(rng) * 0.35;           // ~2 m typical
    const double theta = rng.uniform(0.0, 2.0 * M_PI);  // random direction
    estimates[i] = {truth_x + r * std::cos(theta),
                    truth_y + r * std::sin(theta)};
  }

  // The last t drones are compromised and will stay silent (decoys are
  // filtered the same way — Delphi weights them out unless t+1 echo them).
  const auto byz = sim::last_t_byzantine(n, t);

  sim::SimConfig net;
  net.n = n;
  net.seed = 4242;
  net.latency = std::make_shared<sim::UniformLatency>(500, 30'000);

  sim::Simulator simulator(net);
  for (NodeId i = 0; i < n; ++i) {
    if (byz.contains(i)) {
      simulator.add_node(std::make_unique<sim::SilentProtocol>());
    } else {
      simulator.add_node(
          std::make_unique<multidim::VectorDelphiProtocol>(cfg, estimates[i]));
    }
  }
  simulator.set_byzantine(byz);
  const bool ok = simulator.run();
  std::printf("terminated: %s\n", ok ? "yes" : "no");
  if (!ok) return 1;

  std::printf("ground truth: (%.2f, %.2f)\n", truth_x, truth_y);
  std::printf("drone  estimate (x, y)        agreed (x, y)         err\n");
  for (NodeId i = 0; i < n; ++i) {
    if (simulator.is_byzantine(i)) {
      std::printf("%5u  (compromised)\n", i);
      continue;
    }
    const auto& p =
        simulator.node_as<multidim::VectorDelphiProtocol>(i);
    const auto out = p.output_vector();
    if (!out) continue;
    const double ex = (*out)[0] - truth_x;
    const double ey = (*out)[1] - truth_y;
    std::printf("%5u  (%8.2f, %8.2f)  (%8.2f, %8.2f)  %5.2f m\n", i,
                estimates[i][0], estimates[i][1], (*out)[0], (*out)[1],
                std::hypot(ex, ey));
  }
  std::printf(
      "\nAll honest drones land within eps = %.1f m of each other per axis,\n"
      "inside the relaxed bounding box of honest estimates — despite %zu\n"
      "compromised swarm members and an asynchronous mesh network.\n",
      coord.eps, byz.size());
  return 0;
}
