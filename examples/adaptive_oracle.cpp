/// Adaptive oracle: re-derive Delphi's max-range parameter ∆ online as the
/// feed's volatility drifts — the operational version of the paper's offline
/// two-week calibration (§VI-A).
///
/// A synthetic BTC feed runs through three volatility regimes. A
/// RangeEstimator watches the realized per-minute range δ, refits the
/// extreme-value family (Fréchet vs Gumbel, as in Fig 4), and rebuilds
/// DelphiParams. Every 100 "minutes" we run one Delphi agreement round with
/// the *current* parameters and report the configuration in force.
///
/// Build: cmake --build build && ./build/examples/adaptive_oracle

#include <cstdio>

#include "adaptive/range_estimator.hpp"
#include "delphi/delphi.hpp"
#include "sim/harness.hpp"
#include "stats/distributions.hpp"

using namespace delphi;

namespace {

/// One agreement instant: n nodes quote mid +- per-exchange deviation.
std::vector<double> draw_quotes(std::size_t n, double mid, double delta,
                                Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = mid + rng.uniform(-delta / 2.0, delta / 2.0);
  return v;
}

}  // namespace

int main() {
  const std::size_t n = 7;
  const std::size_t t = max_faults(n);

  adaptive::RangeEstimator::Options opt;
  opt.window = 1440;         // one day of minutes
  opt.min_samples = 64;
  opt.lambda_bits = 20.0;
  opt.fallback_delta = 500.0;  // domain-knowledge bound until warmed up
  opt.safety_factor = 1.25;
  opt.max_delta = 2000.0;  // the paper's domain-knowledge ceiling (§VI-A)
  opt.refit_interval = 100;
  adaptive::RangeEstimator estimator(opt);

  // Three volatility regimes for the per-minute range delta (USD).
  const stats::Frechet calm(4.41, 8.0);      // quiet market
  const stats::Frechet normal(4.41, 29.3);   // the paper's fitted regime
  const stats::Frechet stressed(3.0, 120.0); // crash-day volatility

  Rng rng(2024);
  double mid = 40000.0;
  std::printf(
      "minute  regime    delta_obs   Delta_est  family   levels  output\n");

  for (int minute = 0; minute < 1200; ++minute) {
    const stats::Frechet& regime =
        minute < 400 ? calm : (minute < 800 ? normal : stressed);
    const double delta = regime.sample(rng);
    estimator.observe(delta);
    mid += rng.uniform(-20.0, 20.0);  // random-walk mid price

    if (minute % 100 != 99) continue;

    // Rebuild parameters from the current estimate and run one agreement.
    const auto params =
        estimator.make_params(/*space_min=*/0.0, /*space_max=*/200000.0,
                              /*rho0=*/2.0, /*eps=*/2.0);
    const auto quotes = draw_quotes(n, mid, delta, rng);

    sim::SimConfig net;
    net.n = n;
    net.seed = 7000 + static_cast<std::uint64_t>(minute);
    auto outcome = sim::run_nodes(net, [&](NodeId i) {
      protocol::DelphiProtocol::Config cfg;
      cfg.n = n;
      cfg.t = t;
      cfg.params = params;
      return std::make_unique<protocol::DelphiProtocol>(cfg, quotes[i]);
    });

    const char* regime_name =
        minute < 400 ? "calm" : (minute < 800 ? "normal" : "stressed");
    std::printf("%6d  %-8s  %8.2f$  %8.1f$  %-7s  %6u  %9.2f$\n", minute + 1,
                regime_name, delta, estimator.delta_bound(),
                estimator.fitted_family().value_or("-").c_str(),
                params.num_levels(),
                outcome.honest_outputs.empty() ? -1.0
                                               : outcome.honest_outputs[0]);
  }

  std::printf(
      "\nThe Delta estimate (and with it Delphi's level ladder) tracks the\n"
      "volatility regime: small in calm markets (fewer levels, fewer\n"
      "rounds), larger under stress (the delta <= Delta assumption stays\n"
      "safe). A static Delta would either waste rounds in calm regimes or\n"
      "break termination guarantees in stressed ones.\n");
  return 0;
}
