/// Oracle network example (paper §V-VI-A): a fleet of oracle nodes reports
/// the Bitcoin price once a minute. Each node queries a few exchanges, feeds
/// the median into Delphi, rounds the result onto the eps grid, and collects
/// a t+1 attestation certificate (DORA) ready for an SMR channel/blockchain.
///
/// We simulate ten minutes of operation on the geo-distributed AWS model and
/// show the certified price tracking the (hidden) mid price, including one
/// minute where t nodes are Byzantine.
///
/// Build: cmake --build build && ./build/examples/oracle_network

#include <cstdio>
#include <set>

#include "oracle/dora.hpp"
#include "oracle/feed.hpp"
#include "sim/byzantine.hpp"
#include "sim/harness.hpp"
#include "sim/latency.hpp"

using namespace delphi;

int main() {
  const std::size_t n = 16;
  const std::size_t t = max_faults(n);

  // Deployment-wide key material for the attestation layer.
  crypto::KeyStore keys(/*master=*/0xBEEFCAFE, n);

  // The paper's oracle configuration: rho0 = eps = 2$, Delta = 2000$
  // (derived from the Fig 4 Fréchet fit at lambda = 30 bits).
  oracle::DoraProtocol::Config cfg;
  cfg.delphi.n = n;
  cfg.delphi.t = t;
  cfg.delphi.params = protocol::DelphiParams::oracle_network();

  oracle::PriceFeed feed(oracle::FeedConfig{}, Rng(7));

  std::printf("minute |   mid price | certified price | spread | byz\n");
  std::printf("-------+-------------+-----------------+--------+----\n");

  for (int minute = 1; minute <= 10; ++minute) {
    const auto snapshot = feed.next_minute();
    // One attestation session per minute (prevents cross-minute replay).
    crypto::Attestor attestor(keys, static_cast<std::uint64_t>(minute));
    cfg.attestor = &attestor;

    Rng obs_rng(100 + minute);
    const bool with_byzantine = (minute == 7);  // one bad minute

    sim::SimConfig net;
    net.n = n;
    net.seed = 1000 + minute;
    net.latency = std::make_shared<sim::AwsGeoLatency>(n);
    net.cost = sim::CostModel::aws();

    sim::Simulator sim(net);
    std::set<NodeId> byz;
    for (NodeId i = 0; i < n; ++i) {
      if (with_byzantine && i >= n - t) {
        // Crash-faulty oracles this minute.
        sim.add_node(std::make_unique<sim::SilentProtocol>());
        byz.insert(i);
      } else {
        const double price = oracle::node_observation(snapshot, 3, obs_rng);
        sim.add_node(std::make_unique<oracle::DoraProtocol>(cfg, price));
      }
    }
    sim.set_byzantine(byz);
    if (!sim.run()) {
      std::printf("%6d | minute failed to terminate (bug!)\n", minute);
      return 1;
    }

    // All honest nodes hold a verifiable certificate; at most two adjacent
    // grid values can ever be certified.
    std::set<double> certified;
    for (NodeId i = 0; i < n; ++i) {
      if (byz.contains(i)) continue;
      const auto& node = sim.node_as<oracle::DoraProtocol>(i);
      if (!attestor.verify(node.certificate(), t + 1)) {
        std::printf("invalid certificate at node %u!\n", i);
        return 1;
      }
      certified.insert(*node.output_value());
    }
    std::printf("%6d | %10.2f$ | %14.2f$ | %5.2f$ | %s\n", minute, feed.mid(),
                *certified.begin(), feed.last_range(),
                with_byzantine ? "t crashed" : "-");
  }
  std::printf("\nEvery certified price is within delta + eps of the honest "
              "median — ready for submission to the SMR channel.\n");
  return 0;
}
