/// Baseline comparison example: the same oracle workload through all three
/// convex-agreement protocols in the repo — Delphi, the FIN-style ACS, and
/// Abraham et al. — showing outputs, guarantees, and costs side by side
/// (Table I of the paper, in one screen).
///
/// Build: cmake --build build && ./build/examples/baseline_comparison

#include <algorithm>
#include <cstdio>

#include "abraham/abraham.hpp"
#include "acs/acs.hpp"
#include "delphi/delphi.hpp"
#include "oracle/feed.hpp"
#include "sim/harness.hpp"
#include "sim/latency.hpp"

using namespace delphi;

namespace {

sim::SimConfig aws(std::size_t n, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.latency = std::make_shared<sim::AwsGeoLatency>(n);
  cfg.cost = sim::CostModel::aws();
  return cfg;
}

void report(const char* name, const sim::RunOutcome& out,
            const char* validity) {
  const auto [mn, mx] = std::minmax_element(out.honest_outputs.begin(),
                                            out.honest_outputs.end());
  std::printf("%-16s out=[%.2f, %.2f]$  spread=%.3f$  %6.2f MB  %6.0f ms  %s\n",
              name, *mn, *mx, *mx - *mn, out.honest_bytes / 1e6,
              out.metrics.honest_completion / 1000.0, validity);
}

}  // namespace

int main() {
  const std::size_t n = 16;
  const std::size_t t = max_faults(n);

  oracle::PriceFeed feed(oracle::FeedConfig{}, Rng(3));
  const auto snapshot = feed.next_minute();
  Rng obs(4);
  std::vector<double> inputs(n);
  for (auto& v : inputs) v = oracle::node_observation(snapshot, 3, obs);
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  std::printf("honest inputs in [%.2f, %.2f]$ (delta = %.2f$), mid price "
              "%.2f$\n\n",
              *mn, *mx, *mx - *mn, feed.mid());

  // Delphi (approximate agreement, relaxed validity, signature/coin-free).
  protocol::DelphiProtocol::Config dc;
  dc.n = n;
  dc.t = t;
  dc.params = protocol::DelphiParams::oracle_network();
  report("Delphi",
         sim::run_nodes(aws(n, 1),
                        [&](NodeId i) {
                          return std::make_unique<protocol::DelphiProtocol>(
                              dc, inputs[i]);
                        }),
         "validity [m-d, M+d], eps-agreement, no crypto");

  // FIN-style ACS (exact agreement, convex validity, needs a common coin).
  crypto::CommonCoin coin(99);
  acs::AcsProtocol::Config ac;
  ac.n = n;
  ac.t = t;
  ac.coin = &coin;
  ac.coin_compute_us = 250 * (static_cast<SimTime>(n) / 3 + 1);
  report("FIN (ACS)",
         sim::run_nodes(aws(n, 2),
                        [&](NodeId i) {
                          return std::make_unique<acs::AcsProtocol>(ac,
                                                                    inputs[i]);
                        }),
         "validity [m, M], exact agreement, threshold coin");

  // Abraham et al. (approximate agreement, convex validity, O(n^3)/round).
  abraham::AbrahamProtocol::Config bc;
  bc.n = n;
  bc.t = t;
  bc.rounds = 10;
  bc.space_min = 0.0;
  bc.space_max = 200'000.0;
  report("Abraham et al.",
         sim::run_nodes(aws(n, 3),
                        [&](NodeId i) {
                          return std::make_unique<abraham::AbrahamProtocol>(
                              bc, inputs[i]);
                        }),
         "validity [m, M], eps-agreement, O(n^3)/round");

  std::printf("\nSee bench/ for the full Table I / Fig 6 sweeps.\n");
  return 0;
}
