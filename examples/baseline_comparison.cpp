/// Baseline comparison example: the same oracle workload through all three
/// convex-agreement protocols in the repo — Delphi, the FIN-style ACS, and
/// Abraham et al. — showing outputs, guarantees, and costs side by side
/// (Table I of the paper, in one screen).
///
/// Each contender is one declarative ScenarioSpec differing only in the
/// `protocol` field; scenario::SweepRunner fans the three independent
/// deterministic simulations across cores and returns the unified
/// RunReports in spec order (bit-identical to running them serially).
///
/// Build: cmake --build build && ./build/example_baseline_comparison

#include <algorithm>
#include <cstdio>

#include "common/rng.hpp"
#include "delphi/params.hpp"
#include "oracle/feed.hpp"
#include "scenario/sweep.hpp"

using namespace delphi;

namespace {

void report(const char* name, const scenario::RunReport& rep,
            const char* validity) {
  const auto [mn, mx] =
      std::minmax_element(rep.outputs.begin(), rep.outputs.end());
  std::printf("%-16s out=[%.2f, %.2f]$  spread=%.3f$  %6.2f MB  %6.0f ms  %s\n",
              name, *mn, *mx, *mx - *mn, rep.megabytes(), rep.runtime_ms,
              validity);
}

}  // namespace

int main() {
  const std::size_t n = 16;

  oracle::PriceFeed feed(oracle::FeedConfig{}, Rng(3));
  const auto snapshot = feed.next_minute();
  Rng obs(4);
  std::vector<double> inputs(n);
  for (auto& v : inputs) v = oracle::node_observation(snapshot, 3, obs);
  const auto [mn, mx] = std::minmax_element(inputs.begin(), inputs.end());
  std::printf("honest inputs in [%.2f, %.2f]$ (delta = %.2f$), mid price "
              "%.2f$\n\n",
              *mn, *mx, *mx - *mn, feed.mid());

  // One spec per contender; everything but `protocol`, seed, and the
  // per-suite parameters is shared.
  scenario::ScenarioSpec base;
  base.testbed = scenario::TestbedKind::kAws;
  base.n = n;
  base.inputs = inputs;

  // Delphi (approximate agreement, relaxed validity, signature/coin-free).
  auto delphi_spec = base;
  delphi_spec.protocol = "delphi";
  delphi_spec.seed = 1;
  const auto p = protocol::DelphiParams::oracle_network();
  delphi_spec.params = {{"space-min", p.space_min},
                        {"space-max", p.space_max},
                        {"rho0", p.rho0},
                        {"eps", p.eps},
                        {"delta-max", p.delta_max}};

  // FIN-style ACS (exact agreement, convex validity, needs a common coin).
  auto fin_spec = base;
  fin_spec.protocol = "fin";
  fin_spec.seed = 2;
  fin_spec.params = {{"coin-seed", 99.0},
                     {"coin-us", 250.0 * static_cast<double>(n / 3 + 1)}};

  // Abraham et al. (approximate agreement, convex validity, O(n^3)/round).
  auto abraham_spec = base;
  abraham_spec.protocol = "abraham";
  abraham_spec.seed = 3;
  abraham_spec.params = {{"rounds", 10.0},
                         {"space-min", 0.0},
                         {"space-max", 200'000.0}};

  const auto reports =
      scenario::SweepRunner().run({delphi_spec, fin_spec, abraham_spec});

  report("Delphi", reports[0],
         "validity [m-d, M+d], eps-agreement, no crypto");
  report("FIN (ACS)", reports[1],
         "validity [m, M], exact agreement, threshold coin");
  report("Abraham et al.", reports[2],
         "validity [m, M], eps-agreement, O(n^3)/round");

  std::printf("\nSee bench/ for the full Table I / Fig 6 sweeps, and "
              "SCENARIOS.md for running any of these from delphi_cli.\n");
  return 0;
}
