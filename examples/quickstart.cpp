/// Quickstart: run Delphi among 7 simulated nodes and print the agreed value.
///
/// This is the smallest end-to-end use of the library:
///   1. pick protocol parameters (input space, rho0, Delta, eps);
///   2. build a simulated asynchronous deployment;
///   3. give every node its sensor reading;
///   4. run to termination and read the outputs.
///
/// Build: cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "delphi/delphi.hpp"
#include "sim/harness.hpp"

using namespace delphi;

int main() {
  // 1. Parameters. All honest inputs must lie in [space_min, space_max];
  //    Delta bounds the honest input range except with negligible
  //    probability (see stats/evt.hpp to derive it from a noise model);
  //    eps is the agreement distance; rho0 the finest checkpoint spacing.
  protocol::DelphiParams params;
  params.space_min = 0.0;
  params.space_max = 1000.0;
  params.rho0 = 1.0;
  params.eps = 1.0;
  params.delta_max = 64.0;

  const std::size_t n = 7;             // nodes
  const std::size_t t = max_faults(n); // tolerated Byzantine faults (2)

  // 2. A simulated asynchronous network (wide random delays, reordering).
  sim::SimConfig net;
  net.n = n;
  net.seed = 2024;
  net.latency = std::make_shared<sim::UniformLatency>(1'000, 50'000);

  // 3. Each node's sensor reading of the same physical quantity.
  const double readings[n] = {99.2, 100.1, 100.4, 100.8, 99.9, 101.5, 100.0};

  // 4. Run.
  auto outcome = sim::run_nodes(net, [&](NodeId i) {
    protocol::DelphiProtocol::Config cfg;
    cfg.n = n;
    cfg.t = t;
    cfg.params = params;
    return std::make_unique<protocol::DelphiProtocol>(cfg, readings[i]);
  });

  std::printf("terminated: %s\n", outcome.all_honest_terminated ? "yes" : "no");
  std::printf("outputs:   ");
  for (double v : outcome.honest_outputs) std::printf(" %.3f", v);
  std::printf("\n");
  std::printf("traffic:    %.1f KB in %llu messages, %.0f ms simulated\n",
              outcome.honest_bytes / 1e3,
              static_cast<unsigned long long>(outcome.honest_msgs),
              outcome.metrics.honest_completion / 1000.0);

  // Every output is within eps of every other and inside the relaxed hull
  // [min - max(rho0, delta), max + max(rho0, delta)] of the readings.
  return outcome.all_honest_terminated ? 0 : 1;
}
