#include "bench/bench_util.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace delphi::bench {

sim::SimConfig testbed_config(Testbed tb, std::size_t n, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  if (tb == Testbed::kAws) {
    cfg.latency = std::make_shared<sim::AwsGeoLatency>(n);
    cfg.cost = sim::CostModel::aws();
  } else {
    cfg.latency = std::make_shared<sim::CpsLanLatency>();
    cfg.cost = sim::CostModel::cps();
  }
  return cfg;
}

SimTime default_coin_cost(Testbed tb, std::size_t n) {
  // A Cachin-style coin costs ~n/3+1 share verifications, one pairing each.
  // Pairings run ~0.25 ms on t2.micro-class x86 and ~4 ms on Cortex-A72
  // (Raspberry Pi 4) — the three-orders-over-symmetric-crypto cost the paper
  // cites in §I.
  const double per_pairing_us = (tb == Testbed::kAws) ? 250.0 : 4000.0;
  return static_cast<SimTime>(per_pairing_us *
                              (static_cast<double>(n) / 3.0 + 1.0));
}

std::vector<double> clustered_inputs(std::size_t n, double center,
                                     double delta, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> inputs(n);
  if (n >= 2 && delta > 0.0) {
    inputs[0] = center - delta / 2.0;
    inputs[1] = center + delta / 2.0;
    for (std::size_t i = 2; i < n; ++i) {
      inputs[i] = center + (rng.uniform() - 0.5) * delta;
    }
    // Shuffle so the extremes are not always nodes 0/1.
    for (std::size_t i = n; i > 1; --i) {
      std::swap(inputs[i - 1], inputs[rng.below(i)]);
    }
  } else {
    for (auto& v : inputs) v = center;
  }
  return inputs;
}

namespace {
Result collect(const sim::RunOutcome& out) {
  Result r;
  r.ok = out.all_honest_terminated;
  r.runtime_ms = static_cast<double>(out.metrics.honest_completion) / 1000.0;
  r.megabytes = static_cast<double>(out.honest_bytes) / 1e6;
  r.messages = out.honest_msgs;
  r.outputs = out.honest_outputs;
  return r;
}
}  // namespace

Result run_delphi(Testbed tb, std::size_t n, std::uint64_t seed,
                  const protocol::DelphiParams& params,
                  const std::vector<double>& inputs) {
  auto cfg = testbed_config(tb, n, seed);
  protocol::DelphiProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.params = params;
  return collect(sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
  }));
}

Result run_abraham(Testbed tb, std::size_t n, std::uint64_t seed,
                   std::uint32_t rounds, double space_min, double space_max,
                   const std::vector<double>& inputs) {
  auto cfg = testbed_config(tb, n, seed);
  abraham::AbrahamProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.rounds = rounds;
  c.space_min = space_min;
  c.space_max = space_max;
  return collect(sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<abraham::AbrahamProtocol>(c, inputs[i]);
  }));
}

Result run_fin(Testbed tb, std::size_t n, std::uint64_t seed,
               const std::vector<double>& inputs, SimTime coin_cost_us) {
  auto cfg = testbed_config(tb, n, seed);
  static crypto::CommonCoin coin(0xF1A5C0);
  acs::AcsProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.coin = &coin;
  c.coin_compute_us =
      coin_cost_us >= 0 ? coin_cost_us : default_coin_cost(tb, n);
  c.session = seed;
  return collect(sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<acs::AcsProtocol>(c, inputs[i]);
  }));
}

Result run_dolev(Testbed tb, std::size_t n, std::uint64_t seed,
                 std::uint32_t rounds, double space_min, double space_max,
                 const std::vector<double>& inputs) {
  auto cfg = testbed_config(tb, n, seed);
  dolev::DolevProtocol::Config c;
  c.n = n;
  c.t = dolev::DolevProtocol::max_faults_5t(n);
  c.rounds = rounds;
  c.space_min = space_min;
  c.space_max = space_max;
  return collect(sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<dolev::DolevProtocol>(c, inputs[i]);
  }));
}

bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

bool xl_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--xl") == 0) return true;
  }
  return false;
}

void print_title(const std::string& title, const std::string& subtitle) {
  std::printf("\n==== %s ====\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_int(std::uint64_t v) { return std::to_string(v); }

}  // namespace delphi::bench
