#include "bench/bench_util.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "scenario/registry.hpp"
#include "scenario/sweep.hpp"

namespace delphi::bench {

scenario::TestbedKind to_scenario(Testbed tb) noexcept {
  return tb == Testbed::kAws ? scenario::TestbedKind::kAws
                             : scenario::TestbedKind::kCps;
}

sim::SimConfig testbed_config(Testbed tb, std::size_t n, std::uint64_t seed) {
  return scenario::testbed_config(to_scenario(tb), n, seed);
}

SimTime default_coin_cost(Testbed tb, std::size_t n) {
  return scenario::default_coin_cost(to_scenario(tb), n);
}

std::vector<double> clustered_inputs(std::size_t n, double center,
                                     double delta, std::uint64_t seed) {
  return scenario::clustered_inputs(n, center, delta, seed);
}

Result from_report(const scenario::RunReport& rep) {
  Result r;
  r.ok = rep.ok;
  r.runtime_ms = rep.runtime_ms;
  r.megabytes = rep.megabytes();
  r.messages = rep.honest_msgs;
  r.outputs = rep.outputs;
  return r;
}

namespace {
/// Common spec scaffold: sim substrate, explicit inputs (the benches control
/// their workloads exactly).
scenario::ScenarioSpec base_spec(const char* protocol, Testbed tb,
                                 std::size_t n, std::uint64_t seed,
                                 const std::vector<double>& inputs) {
  scenario::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.substrate = scenario::Substrate::kSim;
  spec.testbed = to_scenario(tb);
  spec.n = n;
  spec.seed = seed;
  spec.inputs = inputs;
  return spec;
}
}  // namespace

scenario::ScenarioSpec delphi_spec(Testbed tb, std::size_t n,
                                   std::uint64_t seed,
                                   const protocol::DelphiParams& params,
                                   const std::vector<double>& inputs) {
  auto spec = base_spec("delphi", tb, n, seed, inputs);
  spec.params["space-min"] = params.space_min;
  spec.params["space-max"] = params.space_max;
  spec.params["rho0"] = params.rho0;
  spec.params["eps"] = params.eps;
  spec.params["delta-max"] = params.delta_max;
  return spec;
}

scenario::ScenarioSpec abraham_spec(Testbed tb, std::size_t n,
                                    std::uint64_t seed, std::uint32_t rounds,
                                    double space_min, double space_max,
                                    const std::vector<double>& inputs) {
  auto spec = base_spec("abraham", tb, n, seed, inputs);
  spec.params["rounds"] = rounds;
  spec.params["space-min"] = space_min;
  spec.params["space-max"] = space_max;
  return spec;
}

scenario::ScenarioSpec fin_spec(Testbed tb, std::size_t n, std::uint64_t seed,
                                const std::vector<double>& inputs,
                                SimTime coin_cost_us) {
  auto spec = base_spec("fin", tb, n, seed, inputs);
  if (coin_cost_us >= 0) {
    spec.params["coin-us"] = static_cast<double>(coin_cost_us);
  }
  return spec;
}

scenario::ScenarioSpec dolev_spec(Testbed tb, std::size_t n,
                                  std::uint64_t seed, std::uint32_t rounds,
                                  double space_min, double space_max,
                                  const std::vector<double>& inputs) {
  auto spec = base_spec("dolev", tb, n, seed, inputs);
  spec.params["rounds"] = rounds;
  spec.params["space-min"] = space_min;
  spec.params["space-max"] = space_max;
  return spec;
}

std::vector<Result> run_specs(const std::vector<scenario::ScenarioSpec>& specs,
                              unsigned jobs) {
  const auto reports = scenario::SweepRunner(jobs).run(specs);
  std::vector<Result> out;
  out.reserve(reports.size());
  for (const auto& rep : reports) out.push_back(from_report(rep));
  return out;
}

std::vector<FaultCase> fault_axis(const scenario::ScenarioSpec& base) {
  const auto& info =
      scenario::ProtocolRegistry::global().require(base.protocol);
  const std::size_t t =
      base.t == scenario::kAutoFaults ? info.default_faults(base.n) : base.t;
  const auto ts = std::to_string(t);

  std::vector<FaultCase> axis;
  const auto add = [&](std::string name, const char* adversary,
                       const char* byzantine, std::size_t crashes) {
    FaultCase fc{std::move(name), base};
    fc.spec.crashes = crashes;
    fc.spec.adversary = scenario::parse_adversary(adversary);
    fc.spec.byzantine = scenario::parse_byzantine(byzantine);
    axis.push_back(std::move(fc));
  };
  add("fault-free", "none", "none", 0);
  if (t >= 1) {
    add("crash(" + ts + ")", "none", "none", t);
    add("crash-after(50," + ts + ")", "none",
        ("crash-after:50:" + ts).c_str(), 0);
    add("garbage(64," + ts + ")", "none", ("garbage:64:" + ts).c_str(), 0);
    add("targeted-lag(" + ts + ",100ms)",
        ("targeted-lag:" + ts + ":100000").c_str(), "none", 0);
    add("partition(" + ts + ",500ms)",
        ("partition:" + ts + ":500000").c_str(), "none", 0);
  }
  add("random-delay(50ms)", "random-delay:50000", "none", 0);
  add("burst(20ms)", "burst:20000", "none", 0);
  return axis;
}

Result run_delphi(Testbed tb, std::size_t n, std::uint64_t seed,
                  const protocol::DelphiParams& params,
                  const std::vector<double>& inputs) {
  return from_report(
      scenario::SimRuntime().run(delphi_spec(tb, n, seed, params, inputs)));
}

Result run_abraham(Testbed tb, std::size_t n, std::uint64_t seed,
                   std::uint32_t rounds, double space_min, double space_max,
                   const std::vector<double>& inputs) {
  return from_report(scenario::SimRuntime().run(
      abraham_spec(tb, n, seed, rounds, space_min, space_max, inputs)));
}

Result run_fin(Testbed tb, std::size_t n, std::uint64_t seed,
               const std::vector<double>& inputs, SimTime coin_cost_us) {
  return from_report(
      scenario::SimRuntime().run(fin_spec(tb, n, seed, inputs, coin_cost_us)));
}

Result run_dolev(Testbed tb, std::size_t n, std::uint64_t seed,
                 std::uint32_t rounds, double space_min, double space_max,
                 const std::vector<double>& inputs) {
  return from_report(scenario::SimRuntime().run(
      dolev_spec(tb, n, seed, rounds, space_min, space_max, inputs)));
}

bool quick_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

bool xl_mode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--xl") == 0) return true;
  }
  return false;
}

void print_title(const std::string& title, const std::string& subtitle) {
  std::printf("\n==== %s ====\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("\n");
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmt_int(std::uint64_t v) { return std::to_string(v); }

}  // namespace delphi::bench
