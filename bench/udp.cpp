/// Real-socket UDP datagram-plane throughput — the substrate the in-process
/// netem shim was built for. Three sections:
///
///   1. Datagram flood: a windowed credit protocol saturates the
///      authenticated UDP mesh with fixed-size broadcast frames (one frame
///      per datagram, selective-repeat ARQ underneath) and measures
///      delivered frames/s and MB/s (payload size x auth on/off x n).
///   2. Multi-instance flood: the same flood split across k concurrent
///      SessionMux instances over one datagram mesh (instances in {1,2,4,8})
///      — the udp counterpart of bench_tcp_throughput's instances axis.
///   3. Scenario sweep: protocol x auth x instances through
///      ScenarioSpec/UdpRuntime on a clean localhost link — the end-to-end
///      numbers every future UDP scenario inherits.
///   4. Loss sweep: rbc and dolev at 0 / 1% / 5% shim loss — the ARQ
///      recovery price in wall-clock time and retransmit-free logical
///      traffic (honest bytes count logical sends only, so the MB column
///      stays flat while runtime grows).
///
/// Emitted through bench/run_all.sh as BENCH_udp.json so the datagram axis
/// cannot rot invisibly.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "net/mux.hpp"
#include "transport/udp.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ------------------------------------------------------------- flood suite

/// Fixed-size opaque payload (channel 0).
class FloodMsg final : public net::MessageBody {
 public:
  explicit FloodMsg(std::size_t size) : size_(size) {}
  std::size_t wire_size() const override { return size_; }
  void serialize(ByteWriter& w) const override {
    for (std::size_t i = 0; i < size_; ++i) {
      w.u8(static_cast<std::uint8_t>(i));
    }
  }
  std::string debug() const override { return "flood"; }

 private:
  std::size_t size_;
};

/// Cumulative-count receiver credit (channel 1).
class CreditMsg final : public net::MessageBody {
 public:
  explicit CreditMsg(std::uint32_t count) : count_(count) {}
  std::uint32_t count() const { return count_; }
  std::size_t wire_size() const override { return 4; }
  void serialize(ByteWriter& w) const override { w.u32(count_); }
  std::string debug() const override { return "credit"; }

 private:
  std::uint32_t count_;
};

constexpr std::uint32_t kDataChannel = 0;
constexpr std::uint32_t kCreditChannel = 1;
/// Max unacked broadcasts in flight. Smaller than the TCP bench's window:
/// every in-flight frame also sits in the ARQ's unacked map, and localhost
/// UDP drops outright when socket buffers overflow, so an over-deep window
/// only buys retransmissions.
constexpr std::uint32_t kWindow = 128;
constexpr std::uint32_t kCreditEvery = 32;

transport::Decoder flood_decoder() {
  return [](std::uint32_t channel, ByteReader& r) -> net::MessagePtr {
    if (channel == kCreditChannel) return std::make_shared<CreditMsg>(r.u32());
    const std::size_t size = r.remaining();
    r.raw(size);
    return std::make_shared<FloodMsg>(size);
  };
}

/// Node 0 broadcasts `total` payloads under a credit window; every receiver
/// credits each kCreditEvery-th frame with its cumulative count.
class FloodSender final : public net::Protocol {
 public:
  FloodSender(std::uint32_t total, std::size_t payload)
      : total_(total), payload_(payload) {}

  void on_start(net::Context& ctx) override {
    credited_.assign(ctx.n(), 0);
    credited_[ctx.self()] = total_;  // self needs no credit
    pump(ctx);
  }

  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override {
    if (channel != kCreditChannel) return;  // self-delivered data frame
    const auto& c = dynamic_cast<const CreditMsg&>(body);
    if (c.count() > credited_[from]) credited_[from] = c.count();
    pump(ctx);
  }

  bool terminated() const override { return done_; }

 private:
  void pump(net::Context& ctx) {
    std::uint32_t floor = total_;
    for (const std::uint32_t a : credited_) floor = std::min(floor, a);
    while (sent_ < total_ && sent_ - floor < kWindow) {
      ctx.broadcast(kDataChannel, std::make_shared<FloodMsg>(payload_));
      ++sent_;
    }
    done_ = floor == total_;
  }

  std::uint32_t total_;
  std::size_t payload_;
  std::uint32_t sent_ = 0;
  std::vector<std::uint32_t> credited_;
  bool done_ = false;
};

class FloodReceiver final : public net::Protocol {
 public:
  explicit FloodReceiver(std::uint32_t total) : total_(total) {}

  void on_start(net::Context&) override {}

  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody&) override {
    if (channel != kDataChannel) return;
    ++got_;
    if (got_ % kCreditEvery == 0 || got_ == total_) {
      ctx.send(from, kCreditChannel, std::make_shared<CreditMsg>(got_));
    }
  }

  bool terminated() const override { return got_ >= total_; }

 private:
  std::uint32_t total_;
  std::uint32_t got_ = 0;
};

struct FloodResult {
  bool ok = false;
  double wall_s = 0.0;
  std::uint64_t frames = 0;  ///< data frames delivered across all receivers
  std::uint64_t bytes = 0;   ///< logical framed bytes the sender sent
};

FloodResult run_flood(std::size_t n, std::size_t payload, bool auth,
                      std::uint32_t total) {
  transport::UdpMesh::Options opts;
  opts.n = n;
  opts.auth = auth;
  opts.seed = 42;
  opts.timeout_ms = 120'000;
  transport::UdpMesh mesh(opts);
  const auto t0 = Clock::now();
  mesh.start(
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (i == 0) return std::make_unique<FloodSender>(total, payload);
        return std::make_unique<FloodReceiver>(total);
      },
      flood_decoder());
  FloodResult res;
  res.ok = mesh.wait();
  res.wall_s = seconds_since(t0);
  if (res.ok) {
    res.frames = static_cast<std::uint64_t>(n - 1) * total;
    res.bytes = mesh.metrics(0).bytes_sent;
  }
  return res;
}

// ------------------------------------------------- multi-instance flood

constexpr std::uint32_t kMuxStride = 1u << 16;

/// The flood decoder behind a mux: wire channels are sid*stride + c.
transport::Decoder mux_flood_decoder() {
  const auto inner = flood_decoder();
  return [inner](std::uint32_t channel, ByteReader& r) {
    return inner(channel % kMuxStride, r);
  };
}

/// `instances` concurrent flood sessions over one datagram mesh via
/// SessionMux, each broadcasting `per_instance` frames under its own credit
/// window (so total in-flight frames scale with the instance count — the ARQ
/// keeps every instance's unacked set independently).
FloodResult run_mux_flood(std::size_t n, std::size_t payload, bool auth,
                          std::uint32_t per_instance,
                          std::uint32_t instances) {
  transport::UdpMesh::Options opts;
  opts.n = n;
  opts.auth = auth;
  opts.seed = 42;
  opts.timeout_ms = 120'000;
  transport::UdpMesh mesh(opts);
  const auto t0 = Clock::now();
  mesh.start(
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        net::SessionMux::Config c;
        c.expected = instances;
        c.stride = kMuxStride;
        c.mode = net::SessionMux::Mode::kConcurrent;
        return std::make_unique<net::SessionMux>(
            c, [i, per_instance, payload](std::uint32_t)
                   -> std::unique_ptr<net::Protocol> {
              if (i == 0) {
                return std::make_unique<FloodSender>(per_instance, payload);
              }
              return std::make_unique<FloodReceiver>(per_instance);
            });
      },
      mux_flood_decoder());
  FloodResult res;
  res.ok = mesh.wait();
  res.wall_s = seconds_since(t0);
  if (res.ok) {
    res.frames =
        static_cast<std::uint64_t>(n - 1) * per_instance * instances;
    res.bytes = mesh.metrics(0).bytes_sent;
  }
  return res;
}

// ---------------------------------------------------------- scenario suite

scenario::ScenarioSpec protocol_spec(const std::string& protocol,
                                     std::size_t n, bool auth,
                                     std::size_t instances = 1) {
  scenario::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.substrate = scenario::Substrate::kUdp;
  spec.n = n;
  spec.seed = 7;
  spec.instances = instances;
  spec.params["auth"] = auth ? 1.0 : 0.0;
  spec.params["timeout-ms"] = 120'000;
  if (protocol == "dolev") spec.params["rounds"] = 6;
  if (protocol == "rbc") spec.params["fifo"] = 0;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("UDP datagram-plane throughput (real localhost sockets)",
              "Flood: windowed broadcast, one frame per datagram over "
              "selective-repeat ARQ (single- and multi-instance over one "
              "mesh); sweeps through ScenarioSpec/UdpRuntime, with and "
              "without shim loss.");

  int failures = 0;

  // ---- datagram flood ---------------------------------------------------
  std::printf("\n-- datagram flood (node 0 broadcasts, %u-frame window) --\n",
              kWindow);
  const std::vector<int> fw = {6, 10, 6, 10, 10, 12, 10};
  print_row({"n", "payload", "auth", "frames", "wall s", "frames/s", "MB/s"},
            fw);
  struct FloodCase {
    std::size_t n;
    std::size_t payload;
    bool auth;
  };
  const std::vector<FloodCase> cases = {
      {2, 64, true},   {2, 64, false}, {2, 1024, true},
      {4, 64, true},   {4, 64, false}, {4, 1024, true},
  };
  for (const auto& c : cases) {
    const std::uint32_t total = quick ? 10'000 : 40'000;
    const auto r = run_flood(c.n, c.payload, c.auth, total);
    if (!r.ok) ++failures;
    const double fps = r.ok ? static_cast<double>(r.frames) / r.wall_s : 0.0;
    const double mbs =
        r.ok ? static_cast<double>(r.bytes) / (1e6 * r.wall_s) : 0.0;
    print_row({std::to_string(c.n), std::to_string(c.payload),
               c.auth ? "on" : "off", fmt_int(r.frames), fmt(r.wall_s, 3),
               fmt_int(static_cast<std::uint64_t>(fps)), fmt(mbs, 1)},
              fw);
  }

  // ---- multi-instance flood --------------------------------------------
  // The datagram counterpart of bench_tcp_throughput's instances axis: k
  // concurrent feeds over one UDP mesh, total frames held constant across
  // the axis so rows are directly comparable.
  std::printf("\n-- multi-instance flood (64 B, auth on, SessionMux over one "
              "mesh, n=4) --\n");
  const std::vector<int> mw = {10, 10, 10, 12, 10};
  print_row({"instances", "frames", "wall s", "frames/s", "vs x1"}, mw);
  {
    const std::uint32_t total = quick ? 8'000 : 24'000;
    double base_fps = 0.0;
    for (const std::uint32_t instances : {1u, 2u, 4u, 8u}) {
      const auto r = run_mux_flood(4, 64, true, total / instances, instances);
      if (!r.ok) ++failures;
      const double fps = r.ok ? static_cast<double>(r.frames) / r.wall_s : 0.0;
      if (instances == 1) base_fps = fps;
      print_row({std::to_string(instances), fmt_int(r.frames),
                 fmt(r.wall_s, 3), fmt_int(static_cast<std::uint64_t>(fps)),
                 base_fps > 0.0 ? fmt(fps / base_fps, 2) + "x" : "-"},
                mw);
    }
  }

  // ---- protocol sweep ---------------------------------------------------
  std::printf("\n-- protocol sweep over UdpRuntime --\n");
  const std::vector<int> sw = {10, 6, 6, 6, 12, 10, 12, 10};
  print_row(
      {"protocol", "n", "auth", "inst", "runtime ms", "MB", "frames/s", "ok"},
      sw);
  const std::vector<std::string> protocols =
      quick ? std::vector<std::string>{"rbc", "dolev"}
            : std::vector<std::string>{"rbc", "dolev", "delphi"};
  for (const auto& protocol : protocols) {
    for (const std::size_t instances : {std::size_t{1}, std::size_t{4}}) {
      for (const bool auth : instances == 1 ? std::vector<bool>{true, false}
                                            : std::vector<bool>{true}) {
        const auto spec = protocol_spec(protocol, 4, auth, instances);
        const auto rep = scenario::UdpRuntime().run(spec);
        if (!rep.ok) ++failures;
        const double fps =
            rep.ok && rep.runtime_ms > 0.0
                ? static_cast<double>(rep.honest_msgs) / (rep.runtime_ms / 1e3)
                : 0.0;
        print_row({protocol, "4", auth ? "on" : "off",
                   std::to_string(instances), fmt(rep.runtime_ms, 2),
                   fmt(static_cast<double>(rep.honest_bytes) / 1e6, 3),
                   fmt_int(static_cast<std::uint64_t>(fps)),
                   rep.ok ? "yes" : "NO"},
                  sw);
      }
    }
  }

  // ---- loss sweep -------------------------------------------------------
  std::printf("\n-- ARQ recovery under shim loss (n=4, auth on) --\n");
  const std::vector<int> lw = {10, 8, 12, 10, 10};
  print_row({"protocol", "loss", "runtime ms", "MB", "ok"}, lw);
  for (const std::string protocol : {"rbc", "dolev"}) {
    for (const double loss : {0.0, 0.01, 0.05}) {
      auto spec = protocol_spec(protocol, 4, /*auth=*/true);
      if (loss > 0.0) spec.params["loss"] = loss;
      const auto rep = scenario::UdpRuntime().run(spec);
      if (!rep.ok) ++failures;
      print_row({protocol, fmt(loss * 100.0, 0) + "%", fmt(rep.runtime_ms, 2),
                 fmt(static_cast<double>(rep.honest_bytes) / 1e6, 3),
                 rep.ok ? "yes" : "NO"},
                lw);
    }
  }

  if (failures > 0) {
    std::printf("\n%d run(s) failed\n", failures);
    return 1;
  }
  std::printf("\nall runs ok\n");
  return 0;
}
