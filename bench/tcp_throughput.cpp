/// Real-socket TCP data-plane throughput — the substrate behind the paper's
/// fig6a/6b deployments. Two sections:
///
///   1. Broadcast fan-out cost: the per-destination price of framing one
///      payload for many links — the legacy path (fresh encode + full HMAC
///      key schedule per destination, what the pre-overhaul data plane did)
///      against the shared-body + precomputed-HmacKey path, in the same
///      binary, so the PR-5 before/after ratio is re-measured on every run.
///   2. Link flood: a windowed credit protocol saturates the authenticated
///      TCP mesh with fixed-size broadcast frames and measures delivered
///      frames/s and MB/s (payload size x auth on/off x n).
///   3. Multi-instance flood: the same flood split across k concurrent
///      SessionMux instances over ONE mesh (instances in {1,2,4,8} x n) —
///      frames from every instance funnel through the same per-link outq and
///      gathered-writev staging, so aggregate authenticated frames/s must
///      hold at (or above) the single-instance baseline.
///   4. Scenario sweep: protocol x n x auth x instances through
///      ScenarioSpec/TcpRuntime — the end-to-end numbers every future TCP
///      scenario inherits.
///
/// Emitted through bench/run_all.sh as BENCH_tcp_throughput.json so the TCP
/// axis can no longer rot invisibly.

#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "net/mux.hpp"
#include "transport/decoders.hpp"
#include "transport/tcp.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ------------------------------------------------------------- flood suite

/// Fixed-size opaque payload (channel 0).
class FloodMsg final : public net::MessageBody {
 public:
  explicit FloodMsg(std::size_t size) : size_(size) {}
  std::size_t wire_size() const override { return size_; }
  void serialize(ByteWriter& w) const override {
    for (std::size_t i = 0; i < size_; ++i) {
      w.u8(static_cast<std::uint8_t>(i));
    }
  }
  std::string debug() const override { return "flood"; }

 private:
  std::size_t size_;
};

/// Cumulative-count receiver ack (channel 1).
class AckMsg final : public net::MessageBody {
 public:
  explicit AckMsg(std::uint32_t count) : count_(count) {}
  std::uint32_t count() const { return count_; }
  std::size_t wire_size() const override { return 4; }
  void serialize(ByteWriter& w) const override { w.u32(count_); }
  std::string debug() const override { return "ack"; }

 private:
  std::uint32_t count_;
};

constexpr std::uint32_t kDataChannel = 0;
constexpr std::uint32_t kAckChannel = 1;
constexpr std::uint32_t kWindow = 512;  ///< max unacked broadcasts in flight
constexpr std::uint32_t kAckEvery = 128;

transport::Decoder flood_decoder() {
  return [](std::uint32_t channel, ByteReader& r) -> net::MessagePtr {
    if (channel == kAckChannel) return std::make_shared<AckMsg>(r.u32());
    const std::size_t size = r.remaining();
    r.raw(size);
    return std::make_shared<FloodMsg>(size);
  };
}

/// Node 0 broadcasts `total` payloads under a credit window; every receiver
/// acks each kAckEvery-th frame with its cumulative count.
class FloodSender final : public net::Protocol {
 public:
  FloodSender(std::uint32_t total, std::size_t payload)
      : total_(total), payload_(payload) {}

  void on_start(net::Context& ctx) override {
    acked_.assign(ctx.n(), 0);
    acked_[ctx.self()] = total_;  // self needs no credit
    pump(ctx);
  }

  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody& body) override {
    if (channel != kAckChannel) return;  // self-delivered data frame
    const auto& ack = dynamic_cast<const AckMsg&>(body);
    if (ack.count() > acked_[from]) acked_[from] = ack.count();
    pump(ctx);
  }

  bool terminated() const override { return done_; }

 private:
  void pump(net::Context& ctx) {
    std::uint32_t floor = total_;
    for (const std::uint32_t a : acked_) floor = std::min(floor, a);
    while (sent_ < total_ && sent_ - floor < kWindow) {
      ctx.broadcast(kDataChannel, std::make_shared<FloodMsg>(payload_));
      ++sent_;
    }
    done_ = floor == total_;
  }

  std::uint32_t total_;
  std::size_t payload_;
  std::uint32_t sent_ = 0;
  std::vector<std::uint32_t> acked_;
  bool done_ = false;
};

class FloodReceiver final : public net::Protocol {
 public:
  explicit FloodReceiver(std::uint32_t total) : total_(total) {}

  void on_start(net::Context&) override {}

  void on_message(net::Context& ctx, NodeId from, std::uint32_t channel,
                  const net::MessageBody&) override {
    if (channel != kDataChannel) return;
    ++got_;
    if (got_ % kAckEvery == 0 || got_ == total_) {
      ctx.send(from, kAckChannel, std::make_shared<AckMsg>(got_));
    }
  }

  bool terminated() const override { return got_ >= total_; }

 private:
  std::uint32_t total_;
  std::uint32_t got_ = 0;
};

struct FloodResult {
  bool ok = false;
  double wall_s = 0.0;
  std::uint64_t frames = 0;  ///< data frames delivered across all receivers
  std::uint64_t bytes = 0;   ///< framed bytes the sender put on the wire
};

FloodResult run_flood(std::size_t n, std::size_t payload, bool auth,
                      std::uint32_t total) {
  transport::TcpCluster::Options opts;
  opts.n = n;
  opts.auth = auth;
  opts.seed = 42;
  opts.timeout_ms = 120'000;
  transport::TcpCluster cluster(opts);
  const auto t0 = Clock::now();
  cluster.start(
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (i == 0) return std::make_unique<FloodSender>(total, payload);
        return std::make_unique<FloodReceiver>(total);
      },
      flood_decoder());
  FloodResult res;
  res.ok = cluster.wait();
  res.wall_s = seconds_since(t0);
  if (res.ok) {
    res.frames = static_cast<std::uint64_t>(n - 1) * total;
    res.bytes = cluster.metrics(0).bytes_sent;
  }
  return res;
}

// ------------------------------------------------- multi-instance flood

constexpr std::uint32_t kMuxStride = 1u << 16;

/// The flood decoder behind a mux: wire channels are sid*stride + c.
transport::Decoder mux_flood_decoder() {
  const auto inner = flood_decoder();
  return [inner](std::uint32_t channel, ByteReader& r) {
    return inner(channel % kMuxStride, r);
  };
}

/// `instances` concurrent flood sessions over one mesh via SessionMux, each
/// broadcasting `per_instance` frames under its own credit window.
FloodResult run_mux_flood(std::size_t n, std::size_t payload, bool auth,
                          std::uint32_t per_instance,
                          std::uint32_t instances) {
  transport::TcpCluster::Options opts;
  opts.n = n;
  opts.auth = auth;
  opts.seed = 42;
  opts.timeout_ms = 120'000;
  transport::TcpCluster cluster(opts);
  const auto t0 = Clock::now();
  cluster.start(
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        net::SessionMux::Config c;
        c.expected = instances;
        c.stride = kMuxStride;
        c.mode = net::SessionMux::Mode::kConcurrent;
        return std::make_unique<net::SessionMux>(
            c, [i, per_instance, payload](std::uint32_t)
                   -> std::unique_ptr<net::Protocol> {
              if (i == 0) {
                return std::make_unique<FloodSender>(per_instance, payload);
              }
              return std::make_unique<FloodReceiver>(per_instance);
            });
      },
      mux_flood_decoder());
  FloodResult res;
  res.ok = cluster.wait();
  res.wall_s = seconds_since(t0);
  if (res.ok) {
    res.frames =
        static_cast<std::uint64_t>(n - 1) * per_instance * instances;
    res.bytes = cluster.metrics(0).bytes_sent;
  }
  return res;
}

// --------------------------------------------------------- fan-out section

/// ns per destination for framing one `payload_size`-byte broadcast to
/// `fanout` authenticated links, legacy vs shared-body path.
struct FanoutCost {
  double legacy_ns = 0.0;
  double shared_ns = 0.0;
};

FanoutCost measure_fanout(std::size_t payload_size, std::size_t fanout,
                          std::size_t iters) {
  const std::vector<std::uint8_t> payload(payload_size, 0x5A);
  crypto::KeyStore keys(/*master=*/7, fanout + 1);
  std::vector<crypto::HmacKey> links;  // per-link midstates, derived once
  for (std::size_t j = 0; j < fanout; ++j) {
    links.emplace_back(keys.channel_key(0, static_cast<NodeId>(j + 1)));
  }

  FanoutCost cost;
  std::uint64_t sink = 0;
  {
    // Legacy: every destination re-encodes the frame and re-runs the full
    // HMAC key schedule (ipad/opad absorption) — per-destination work.
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      for (std::size_t j = 0; j < fanout; ++j) {
        const auto frame = transport::encode_frame(
            3, payload, &keys.channel_key(0, static_cast<NodeId>(j + 1)));
        sink += frame.back();
      }
    }
    cost.legacy_ns =
        seconds_since(t0) * 1e9 / static_cast<double>(iters * fanout);
  }
  {
    // Shared body: one serialization, per-destination work is two
    // compression finishes on the precomputed midstates.
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < iters; ++i) {
      const auto body = transport::encode_frame_body(3, payload, true);
      for (std::size_t j = 0; j < fanout; ++j) {
        const auto tag = transport::frame_tag(links[j], *body);
        sink += tag[31];
      }
    }
    cost.shared_ns =
        seconds_since(t0) * 1e9 / static_cast<double>(iters * fanout);
  }
  if (sink == 0xFFFFFFFF) std::printf("~");  // defeat dead-code elimination
  return cost;
}

// ---------------------------------------------------------- scenario suite

scenario::ScenarioSpec protocol_spec(const std::string& protocol,
                                     std::size_t n, bool auth,
                                     std::size_t instances) {
  scenario::ScenarioSpec spec;
  spec.protocol = protocol;
  spec.substrate = scenario::Substrate::kTcp;
  spec.n = n;
  spec.seed = 7;
  spec.instances = instances;  // concurrent feeds over one mesh
  spec.params["auth"] = auth ? 1.0 : 0.0;
  spec.params["timeout-ms"] = 120'000;
  if (protocol == "dolev") spec.params["rounds"] = 6;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("TCP data-plane throughput (real localhost sockets)",
              "Flood: windowed broadcast of fixed-size frames (single- and "
              "multi-instance over one mesh); sweep: protocol x n x auth x "
              "instances through ScenarioSpec/TcpRuntime.");

  int failures = 0;

  // ---- broadcast fan-out cost ------------------------------------------
  std::printf("\n-- broadcast fan-out: ns/destination, authenticated (%s) --\n",
              crypto::sha256_hw_accelerated() ? "SHA-NI" : "scalar SHA-256");
  const std::vector<int> cw = {8, 8, 14, 14, 10};
  print_row({"payload", "fanout", "legacy ns", "shared ns", "speedup"}, cw);
  const std::size_t fan_iters = quick ? 5'000 : 20'000;
  for (const std::size_t payload : {64u, 1024u}) {
    for (const std::size_t fanout : {4u, 16u}) {
      const auto c = measure_fanout(payload, fanout, fan_iters);
      print_row({std::to_string(payload), std::to_string(fanout),
                 fmt(c.legacy_ns, 0), fmt(c.shared_ns, 0),
                 fmt(c.legacy_ns / c.shared_ns, 2) + "x"},
                cw);
    }
  }

  // ---- link flood -------------------------------------------------------
  std::printf("\n-- link flood (node 0 broadcasts, %u-frame window) --\n",
              kWindow);
  const std::vector<int> fw = {6, 10, 6, 10, 10, 12, 10};
  print_row({"n", "payload", "auth", "frames", "wall s", "frames/s", "MB/s"},
            fw);
  struct FloodCase {
    std::size_t n;
    std::size_t payload;
    bool auth;
  };
  const std::vector<FloodCase> cases = {
      {2, 64, true},   {2, 64, false}, {2, 1024, true},
      {4, 64, true},   {4, 64, false}, {4, 1024, true},
  };
  for (const auto& c : cases) {
    const std::uint32_t total = quick ? 15'000 : 60'000;
    const auto r = run_flood(c.n, c.payload, c.auth, total);
    if (!r.ok) ++failures;
    const double fps = r.ok ? static_cast<double>(r.frames) / r.wall_s : 0.0;
    const double mbs =
        r.ok ? static_cast<double>(r.bytes) / (1e6 * r.wall_s) : 0.0;
    print_row({std::to_string(c.n), std::to_string(c.payload),
               c.auth ? "on" : "off", fmt_int(r.frames), fmt(r.wall_s, 3),
               fmt_int(static_cast<std::uint64_t>(fps)), fmt(mbs, 1)},
              fw);
  }

  // ---- multi-instance flood --------------------------------------------
  // The ROADMAP amortization target: k feeds over ONE mesh must sustain
  // aggregate authenticated frames/s at or above the single-instance
  // baseline (~1.36 M at n=4), because cross-instance backlogs coalesce in
  // the per-link staging/writev path. Total frames are held constant across
  // the axis so rows are directly comparable.
  std::printf("\n-- multi-instance flood (64 B, auth on, SessionMux over one "
              "mesh) --\n");
  const std::vector<int> mw = {6, 10, 10, 10, 12, 10};
  print_row({"n", "instances", "frames", "wall s", "frames/s", "vs x1"}, mw);
  for (const std::size_t n : {2u, 4u}) {
    const std::uint32_t total = quick ? 24'000 : 96'000;
    double base_fps = 0.0;
    for (const std::uint32_t instances : {1u, 2u, 4u, 8u}) {
      const auto r = run_mux_flood(n, 64, true, total / instances, instances);
      if (!r.ok) ++failures;
      const double fps = r.ok ? static_cast<double>(r.frames) / r.wall_s : 0.0;
      if (instances == 1) base_fps = fps;
      print_row({std::to_string(n), std::to_string(instances),
                 fmt_int(r.frames), fmt(r.wall_s, 3),
                 fmt_int(static_cast<std::uint64_t>(fps)),
                 base_fps > 0.0 ? fmt(fps / base_fps, 2) + "x" : "-"},
                mw);
    }
  }

  // ---- protocol sweep ---------------------------------------------------
  std::printf("\n-- protocol sweep over TcpRuntime --\n");
  const std::vector<int> sw = {10, 6, 6, 6, 12, 10, 12, 10};
  print_row(
      {"protocol", "n", "auth", "inst", "runtime ms", "MB", "frames/s", "ok"},
      sw);
  const std::vector<std::string> protocols =
      quick ? std::vector<std::string>{"dolev", "delphi"}
            : std::vector<std::string>{"dolev", "rbc", "delphi"};
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{4} : std::vector<std::size_t>{4, 7};
  const std::vector<std::size_t> inst_axis =
      quick ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 2, 4, 8};
  for (const auto& protocol : protocols) {
    for (const std::size_t n : sizes) {
      for (const std::size_t instances : inst_axis) {
        // The auth toggle only matters for the single-instance rows; the
        // instances axis is about aggregate authenticated throughput.
        for (const bool auth : instances == 1
                                   ? std::vector<bool>{true, false}
                                   : std::vector<bool>{true}) {
          const auto spec = protocol_spec(protocol, n, auth, instances);
          const auto rep = scenario::TcpRuntime().run(spec);
          if (!rep.ok) ++failures;
          const double fps = rep.ok && rep.runtime_ms > 0.0
                                 ? static_cast<double>(rep.honest_msgs) /
                                       (rep.runtime_ms / 1e3)
                                 : 0.0;
          print_row({protocol, std::to_string(n), auth ? "on" : "off",
                     std::to_string(instances), fmt(rep.runtime_ms, 2),
                     fmt(static_cast<double>(rep.honest_bytes) / 1e6, 3),
                     fmt_int(static_cast<std::uint64_t>(fps)),
                     rep.ok ? "yes" : "NO"},
                    sw);
        }
      }
    }
  }

  if (failures > 0) {
    std::printf("\n%d run(s) failed\n", failures);
    return 1;
  }
  std::printf("\nall runs ok\n");
  return 0;
}
