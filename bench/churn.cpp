/// Churn & recovery sweep: deterministic node restarts crossed with
/// protocol × substrate — the bench the churn fault family enables.
///
///   1. Sim churn sweep: protocol × n × churn schedule through SimRuntime
///      (fanned across cores by run_specs; churn is deterministic, so the
///      sweep is bit-identical to serial execution). Shows what a restart
///      costs in completion time while logical traffic stays flat — the
///      simulator's pure-delay restart defers frames, it never re-counts
///      them.
///   2. Socket recovery: the same schedules on real TCP and UDP meshes,
///      where a restart actually closes sockets and the node re-dials with
///      backoff (TCP, replay-log catch-up) or rebinds its port (UDP, ARQ
///      retransmission catch-up). Reports the recovery plane's own metrics —
///      reconnects, downtime, catch-up frames — which are excluded from
///      honest traffic by construction, so the MB column matches the
///      churn-free row for fixed-round protocols (dolev) exactly.
///
/// Emitted through bench/run_all.sh as BENCH_churn.json so the recovery
/// plane cannot rot invisibly.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "scenario/sweep.hpp"

using namespace delphi;
using namespace delphi::bench;
using scenario::ScenarioSpec;

namespace {

struct Recovery {
  std::uint64_t reconnects = 0;
  std::uint64_t downtime_ms = 0;
  std::uint64_t catchup_frames = 0;
  std::uint64_t catchup_bytes = 0;
};

Recovery recovery_totals(const scenario::RunReport& rep) {
  Recovery tot;
  for (const auto& nc : rep.nodes) {
    tot.reconnects += nc.reconnects;
    tot.downtime_ms += nc.downtime_ms;
    tot.catchup_frames += nc.catchup_frames;
    tot.catchup_bytes += nc.catchup_bytes;
  }
  return tot;
}

/// One labeled churn schedule.
struct ChurnCase {
  std::string name;
  std::vector<scenario::ChurnSpec> churn;
};

ScenarioSpec base_spec(const std::string& protocol, scenario::Substrate sub,
                       std::size_t n) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.substrate = sub;
  spec.testbed = scenario::TestbedKind::kAsync;
  spec.n = n;
  spec.seed = 7;
  if (protocol == "dolev") spec.params["rounds"] = 4;
  if (sub != scenario::Substrate::kSim) spec.params["timeout-ms"] = 120'000;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Churn & recovery — deterministic restarts across substrates",
              "churn=k:down_us:up_us restarts k honest nodes; sim defers "
              "their frames\n(pure-delay restart), tcp re-dials with backoff "
              "+ replay catch-up, udp\nrebinds + ARQ retransmission. Catch-up "
              "traffic is counted separately from\nhonest bytes.");

  int failures = 0;

  // ---- sim churn sweep --------------------------------------------------
  const std::vector<std::string> protocols =
      quick ? std::vector<std::string>{"delphi", "dolev"}
            : std::vector<std::string>{"delphi", "rbc", "dolev"};
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{4} : std::vector<std::size_t>{4, 16};
  const std::vector<ChurnCase> schedules = {
      {"none", {}},
      {"churn:1", {{1, 2'000, 50'000}}},
      {"churn:2", {{2, 2'000, 50'000}}},
      {"churn:1x2", {{1, 2'000, 50'000}, {1, 80'000, 120'000}}},
  };

  std::printf("\n-- sim churn sweep (deferred frames counted as catch-up) --\n");
  struct Row {
    std::string protocol;
    std::size_t n;
    std::string churn;
  };
  std::vector<Row> rows;
  std::vector<ScenarioSpec> specs;
  for (const auto& protocol : protocols) {
    for (const std::size_t n : sizes) {
      for (const auto& cc : schedules) {
        ScenarioSpec spec = base_spec(protocol, scenario::Substrate::kSim, n);
        spec.churn = cc.churn;
        rows.push_back({protocol, n, cc.name});
        specs.push_back(std::move(spec));
      }
    }
  }
  // Project full reports (recovery counters live in RunReport.nodes, not in
  // the bench Result), still serially deterministic.
  std::vector<scenario::RunReport> reports;
  reports.reserve(specs.size());
  {
    scenario::SweepRunner runner(0);
    reports = runner.run(specs);
  }
  const std::vector<int> sw = {10, 6, 12, 12, 10, 8, 9, 10, 10, 6};
  print_row({"protocol", "n", "churn", "runtime_ms", "MB", "msgs", "restarts",
             "down_ms", "catchup", "ok"},
            sw);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& rep = reports[i];
    if (!rep.ok) ++failures;
    const Recovery rec = recovery_totals(rep);
    print_row({rows[i].protocol, std::to_string(rows[i].n), rows[i].churn,
               fmt(rep.runtime_ms, 2), fmt(rep.megabytes(), 3),
               fmt_int(rep.honest_msgs), fmt_int(rec.reconnects),
               fmt_int(rec.downtime_ms), fmt_int(rec.catchup_frames),
               rep.ok ? "y" : "N"},
              sw);
  }

  // ---- socket recovery --------------------------------------------------
  // down_us = 0 makes the restart unconditional on machine speed: the
  // churned node is dark from the very first frame, so completion requires
  // the catch-up plane (TCP replay logs / UDP ARQ), not lucky timing.
  std::printf("\n-- socket recovery (n=4, node dark from start, real "
              "restarts) --\n");
  const std::vector<int> kw = {10, 6, 12, 12, 10, 8, 9, 10, 10, 6};
  print_row({"protocol", "sub", "churn", "runtime_ms", "MB", "msgs",
             "restarts", "down_ms", "catchup", "ok"},
            kw);
  const std::vector<std::string> socket_protocols =
      quick ? std::vector<std::string>{"dolev"}
            : std::vector<std::string>{"rbc", "dolev", "delphi"};
  for (const auto& protocol : socket_protocols) {
    for (const auto sub :
         {scenario::Substrate::kTcp, scenario::Substrate::kUdp}) {
      const bool tcp = sub == scenario::Substrate::kTcp;
      const std::vector<ChurnCase> socket_cases = {
          {"none", {}},
          {"churn:1",
           {{1, 0, tcp ? std::uint64_t{150'000} : std::uint64_t{120'000}}}},
      };
      for (const auto& cc : socket_cases) {
        ScenarioSpec spec = base_spec(protocol, sub, 4);
        spec.churn = cc.churn;
        scenario::RunReport rep;
        rep = tcp ? scenario::TcpRuntime().run(spec)
                  : scenario::UdpRuntime().run(spec);
        if (!rep.ok) ++failures;
        const Recovery rec = recovery_totals(rep);
        print_row({protocol, tcp ? "tcp" : "udp", cc.name,
                   fmt(rep.runtime_ms, 2), fmt(rep.megabytes(), 3),
                   fmt_int(rep.honest_msgs), fmt_int(rec.reconnects),
                   fmt_int(rec.downtime_ms), fmt_int(rec.catchup_frames),
                   rep.ok ? "y" : "N"},
                  kw);
      }
    }
  }

  std::printf(
      "\nexpected shape: sim completion under churn tracks the restart window"
      "\n(up_us) plus the deferred rounds' latency while MB and msgs match the"
      "\nchurn-free row (pure-delay restart, nothing re-counted); on the"
      "\nsockets dolev's MB column is identical with and without churn"
      "\n(fixed-round multicast + catch-up excluded from honest bytes), while"
      "\nthe restarts/down_ms/catchup columns show the recovery plane doing"
      "\nreal work.\n");
  if (failures > 0) {
    std::fprintf(stderr, "%d churned run(s) did not terminate\n", failures);
    return 1;
  }
  return 0;
}
