/// Regenerates Table III: oracle reporting protocols. We measure the full
/// Delphi + DORA pipeline (approximate agreement + rounding + t+1
/// attestation certificate) and report bits, crypto-operation counts, and the
/// number of distinct certified outputs. The DORA baseline of Chakka et al.
/// [20] is *measured* as well (src/oracle/dora_baseline.*, SMR modeled as a
/// trusted sequencer); Chainlink's partially-synchronous reporting protocol
/// is reported analytically only.

#include <cstdio>
#include <set>

#include "bench/bench_util.hpp"
#include "crypto/certificate.hpp"
#include "oracle/dora.hpp"
#include "oracle/dora_baseline.hpp"
#include "oracle/feed.hpp"
#include "sim/harness.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Table III — oracle reporting protocols",
              "measured: Delphi+DORA on the oracle workload (simulated AWS); "
              "analytic rows for Chainlink/DORA per the paper.");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 40};

  for (std::size_t n : sizes) {
    crypto::KeyStore keys(0xD0AA + n, n);
    crypto::Attestor attestor(keys, /*session=*/n);

    oracle::DoraProtocol::Config cfg;
    cfg.delphi.n = n;
    cfg.delphi.t = max_faults(n);
    cfg.delphi.params = protocol::DelphiParams::oracle_network();
    cfg.attestor = &attestor;
    cfg.sign_compute_us = 50;     // one ECDSA/BLS-share-scale signature
    cfg.verify_compute_us = 120;  // one verification

    oracle::PriceFeed feed(oracle::FeedConfig{}, Rng(21 + n));
    const auto snapshot = feed.next_minute();
    Rng obs_rng(22 + n);
    std::vector<double> inputs(n);
    for (auto& v : inputs) v = oracle::node_observation(snapshot, 3, obs_rng);

    auto sim_cfg = testbed_config(Testbed::kAws, n, 9);
    sim::Simulator sim(sim_cfg);
    for (NodeId i = 0; i < n; ++i) {
      sim.add_node(std::make_unique<oracle::DoraProtocol>(cfg, inputs[i]));
    }
    const bool ok = sim.run();

    std::set<double> outputs;
    bool certs_ok = true;
    for (NodeId i = 0; i < n; ++i) {
      const auto& node = sim.node_as<oracle::DoraProtocol>(i);
      if (auto v = node.output_value()) outputs.insert(*v);
      certs_ok &= attestor.verify(node.certificate(), max_faults(n) + 1);
    }
    std::uint64_t bytes = 0;
    for (NodeId i = 0; i < n; ++i) bytes += sim.node_metrics(i).bytes_sent;

    std::printf("n = %zu (t = %zu):\n", n, max_faults(n));
    std::printf("  terminated: %s, all certificates valid: %s\n",
                ok ? "yes" : "NO", certs_ok ? "yes" : "NO");
    std::printf("  honest traffic: %.2f MB, runtime %.0f ms\n", bytes / 1e6,
                sim.metrics().honest_completion / 1000.0);
    std::printf("  signatures per node: 1 sign + <= n verifies (attestation "
                "only; the agreement itself is signature-free)\n");
    std::printf("  distinct certified outputs: %zu (paper: Delphi yields at "
                "most 2)\n",
                outputs.size());
    std::printf("  certified value(s):");
    for (double v : outputs) std::printf(" %.2f$", v);
    std::printf("  | mid price %.2f$\n", feed.mid());

    // Measured DORA baseline [20] on the same workload (n oracles + 1 SMR
    // sequencer process whose traffic is excluded, as in the paper).
    {
      oracle::DoraBaselineConfig bcfg;
      bcfg.n = n;
      bcfg.t = max_faults(n);
      bcfg.attestor = &attestor;
      auto net = testbed_config(Testbed::kAws, n + 1, 10);
      sim::Simulator bsim(net);
      for (NodeId i = 0; i < n; ++i) {
        bsim.add_node(
            std::make_unique<oracle::DoraBaselineOracle>(bcfg, inputs[i]));
      }
      bsim.add_node(std::make_unique<oracle::SmrSequencer>(bcfg));
      const bool bok = bsim.run();
      std::uint64_t bbytes = 0;
      for (NodeId i = 0; i < n; ++i) bbytes += bsim.node_metrics(i).bytes_sent;
      std::set<double> bouts;
      for (NodeId i = 0; i < n; ++i) {
        if (auto v = bsim.node_as<oracle::DoraBaselineOracle>(i).output_value())
          bouts.insert(*v);
      }
      std::printf("  [DORA baseline] terminated: %s, traffic %.2f MB, runtime "
                  "%.0f ms, %zu output(s), 1 sign + O(n) verifies per node\n\n",
                  bok ? "yes" : "NO", bbytes / 1e6,
                  bsim.metrics().honest_completion / 1000.0, bouts.size());
    }
  }

  std::printf(
      "analytic rows (paper Table III, kappa = 256):\n"
      "  Chainlink   p-sync  O(l n^3 + kappa n^3) bits  sign O(1) verf O(n) "
      "rounds 4      validity [m, M]        not adaptively secure\n"
      "  DORA        async   O(l n^2 + kappa n^2) bits  sign O(1) verf O(n) "
      "rounds 3      validity [m, M]        not adaptively secure\n"
      "  DELPHI      async   O(l n^2 (d/e) polylog)     sign 0    verf 0    "
      "rounds polylog validity [m-d-e, M+d+e]  adaptively secure\n");
  return 0;
}
