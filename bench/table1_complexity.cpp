/// Regenerates Table I (comparison of asynchronous convex-BA protocols) in
/// measured form: honest communication (bits), message counts and empirical
/// scaling exponents for Delphi, Abraham et al. and the FIN-style ACS on the
/// same workload, alongside the analytic rows the paper tabulates.
///
/// Reproduction target (shape): Delphi's bytes grow ~n^2 (x log factors);
/// both baselines grow ~n^3; the absolute crossover lands by n ~ 40-64.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Table I — asynchronous convex BA: measured complexity",
              "workload: honest inputs with range delta = 8$ around 40000$; "
              "Delphi rho0 = eps = 2$, Delta = 2000$; Abraham rounds = "
              "log2(Delta/eps) = 10; FIN-style ACS with simulated threshold "
              "coin.\nBits are honest-node totals for one agreement.");

  protocol::DelphiParams params;
  params.space_min = 0.0;
  params.space_max = 200'000.0;
  params.rho0 = 2.0;
  params.eps = 2.0;
  params.delta_max = 2000.0;

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{10, 16, 28}
            : std::vector<std::size_t>{10, 16, 28, 40, 64};

  const std::vector<int> w = {8, 16, 16, 14, 14, 12};
  print_row({"n", "protocol", "bits", "messages", "bits/n^2", "bits/n^3"}, w);

  struct Point {
    std::size_t n;
    double delphi_bits, abraham_bits, fin_bits;
  };
  std::vector<Point> points;

  for (std::size_t n : sizes) {
    const auto inputs = clustered_inputs(n, 40'000.0, 8.0, 42 + n);
    const auto d = run_delphi(Testbed::kAws, n, 1, params, inputs);
    const auto a = run_abraham(Testbed::kAws, n, 2, 10, 0.0, 200'000.0,
                               inputs);
    const auto f = run_fin(Testbed::kAws, n, 3, inputs);
    const double n2 = static_cast<double>(n) * n;
    const double n3 = n2 * n;
    const auto row = [&](const char* name, const Result& r) {
      const double bits = r.megabytes * 8e6;
      print_row({std::to_string(n), name, fmt(bits, 0),
                 fmt_int(r.messages), fmt(bits / n2, 0), fmt(bits / n3, 1)},
                w);
      if (!r.ok) std::printf("  !! run did not terminate\n");
      return bits;
    };
    Point p{n, 0, 0, 0};
    p.delphi_bits = row("Delphi", d);
    p.abraham_bits = row("Abraham et al.", a);
    p.fin_bits = row("FIN (ACS)", f);
    points.push_back(p);
  }

  // Empirical scaling exponents from the first/last sweep points.
  const auto expo = [&](double b_lo, double b_hi) {
    return std::log(b_hi / b_lo) /
           std::log(static_cast<double>(points.back().n) /
                    static_cast<double>(points.front().n));
  };
  std::printf("\nempirical scaling exponents (bits ~ n^x):\n");
  std::printf("  Delphi          x = %.2f   (paper: ~2 with log factors)\n",
              expo(points.front().delphi_bits, points.back().delphi_bits));
  std::printf("  Abraham et al.  x = %.2f   (paper: 3)\n",
              expo(points.front().abraham_bits, points.back().abraham_bits));
  std::printf("  FIN (ACS)       x = %.2f   (paper: ~3 via kappa*n^3 term)\n",
              expo(points.front().fin_bits, points.back().fin_bits));

  std::printf(
      "\nanalytic rows (paper Table I):\n"
      "  HoneyBadgerBFT   O(l n^3)              rounds O(log n)  validity "
      "[m, M]   setup DKG\n"
      "  Dumbo2           O(l n^2 + kappa n^3)  rounds O(1)      validity "
      "[m, M]   setup HT-DKG\n"
      "  FIN              O(l n^2 + kappa n^3)  rounds O(1)      validity "
      "[m, M]   setup DKG\n"
      "  Abraham et al.   O(l n^3 log(d/e) + n^4) rounds O(log(d/e)) "
      "validity [m, M]  auth channels\n"
      "  DELPHI           O(l n^2 (d/e) polylog)  rounds O(log(d/e ...)) "
      "validity [m-d, M+d]  auth channels\n");
  return 0;
}
