/// Regenerates Fig 5: the IoU histogram of drone object detections with the
/// Gamma fit, the statistics the paper quotes (mean IoU 0.87, 0.37 % of
/// detections below 0.6), and the resulting CPS Delphi configuration
/// (Delta = 50 m, rho0 = eps = 0.5 m).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "drone/detection.hpp"
#include "stats/evt.hpp"
#include "stats/fit.hpp"
#include "stats/summary.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int, char**) {
  print_title("Fig 5 — IoU histogram for drone-based object detection",
              "80000 synthetic detections; IoU loss ~ Gamma per the paper's "
              "EfficientDet characterization (see DESIGN.md substitutions).");

  drone::DetectionModel model{drone::DetectionConfig{}};
  Rng rng(11);
  std::vector<double> ious(80'000);
  for (auto& v : ious) v = model.sample_iou(rng);

  const auto s = stats::summarize(ious);
  std::printf("samples=%zu  mean IoU=%.3f (paper: 0.87)  sd=%.3f\n\n",
              s.count, s.mean, s.stddev);

  stats::Histogram hist(0.5, 1.0, 20);
  hist.add_all(ious);
  std::printf("histogram of IoU:\n%s\n", hist.ascii(48).c_str());

  std::size_t below06 = 0;
  for (double v : ious) below06 += (v < 0.6);
  std::printf("P(IoU < 0.6) = %.2f%%   (paper: 0.37%%)\n\n",
              100.0 * below06 / ious.size());

  // Fit the IoU loss (1 - IoU), the quantity that is Gamma in the paper.
  std::vector<double> loss(ious.size());
  for (std::size_t i = 0; i < ious.size(); ++i) loss[i] = 1.0 - ious[i];
  const auto fits = stats::best_fit(loss, {"Gamma", "Frechet"});
  std::printf("fits of IoU loss (KS, smaller = better):\n");
  for (const auto& f : fits) {
    std::printf("  %-8s KS = %.4f\n", f.family.c_str(), f.ks);
  }
  std::printf("best fit: %s  (paper: Gamma)\n\n", fits.front().family.c_str());

  // Per-coordinate position error: d = 5.3 * (1 - IoU) + GPS.
  std::vector<double> err(20'000);
  Rng rng2(12);
  for (auto& e : err) {
    const auto obs = model.observe(drone::Vec2{0.0, 0.0}, rng2);
    e = obs.x;  // signed per-coordinate error around truth
  }
  const auto es = stats::summarize(err);
  std::printf("per-coordinate error: mean=%.2f m sd=%.2f m (paper's combined "
              "error mean ~2 m)\n",
              es.mean, es.stddev);

  // CPS Delphi configuration from the error distribution at lambda = 20.
  stats::Gamma combined(4.0, 0.45);  // conservative per-coordinate magnitude
  const double delta_cap = stats::range_bound(combined, 169, 20.0);
  std::printf(
      "range bound for n = 169 drones at lambda = 20 bits: %.1f m -> paper "
      "rounds up to Delta = 50 m, rho0 = eps = 0.5 m (our drone_cps() "
      "defaults)\n",
      delta_cap);
  return 0;
}
