#!/usr/bin/env bash
# Build and run every benchmark binary, emitting one machine-readable
# BENCH_<name>.json per bench (plus an aggregate BENCH_SUMMARY.json) so
# successive PRs can diff perf numbers mechanically.
#
# Usage:
#   bench/run_all.sh [--full] [--build-dir DIR] [--out-dir DIR]
#
#   --full        run full sweeps (default passes --quick to every bench)
#   --build-dir   CMake build tree to use            (default: build)
#   --out-dir     where to write logs + JSON          (default: bench-results)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=bench-results
QUICK_FLAG=--quick
while [[ $# -gt 0 ]]; do
  case "$1" in
    --full) QUICK_FLAG="" ;;
    --build-dir) BUILD_DIR=$2; shift ;;
    --out-dir) OUT_DIR=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" --target bench_all -j"$(nproc)"

mkdir -p "$OUT_DIR"
summary_entries=()
failures=0

for bin in "$BUILD_DIR"/bench_*; do
  [[ -x $bin && ! -d $bin ]] || continue
  name=$(basename "$bin")
  name=${name#bench_}
  log="$OUT_DIR/$name.log"

  # micro_primitives is a Google Benchmark binary: it has its own JSON
  # reporter and does not understand --quick.
  if [[ $name == micro_primitives ]]; then
    args=(--benchmark_out="$OUT_DIR/$name.gbench.json" --benchmark_out_format=json)
  else
    args=($QUICK_FLAG)
  fi

  start=$(date +%s.%N)
  # ${args[@]+...} keeps the empty expansion safe under set -u on bash < 4.4.
  if "$bin" ${args[@]+"${args[@]}"} >"$log" 2>&1; then ok=true; else ok=false; failures=$((failures + 1)); fi
  end=$(date +%s.%N)
  wall=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')

  json="$OUT_DIR/BENCH_${name}.json"
  {
    printf '{\n'
    printf '  "bench": "%s",\n' "$name"
    printf '  "ok": %s,\n' "$ok"
    printf '  "wall_seconds": %s,\n' "$wall"
    printf '  "quick": %s,\n' "$([[ -n $QUICK_FLAG ]] && echo true || echo false)"
    printf '  "log": "%s",\n' "$log"
    printf '  "timestamp_utc": "%s"\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '}\n'
  } > "$json"
  summary_entries+=("{\"bench\": \"$name\", \"ok\": $ok, \"wall_seconds\": $wall}")
  printf '%-24s ok=%-5s %8ss  -> %s\n' "$name" "$ok" "$wall" "$json"
done

{
  printf '{\n  "benches": [\n'
  for i in ${summary_entries[@]+"${!summary_entries[@]}"}; do
    sep=,
    [[ $i -eq $((${#summary_entries[@]} - 1)) ]] && sep=""
    printf '    %s%s\n' "${summary_entries[$i]}" "$sep"
  done
  printf '  ],\n  "failures": %d,\n  "timestamp_utc": "%s"\n}\n' \
    "$failures" "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
} > "$OUT_DIR/BENCH_SUMMARY.json"

echo "wrote $OUT_DIR/BENCH_SUMMARY.json"
if [[ $failures -gt 0 ]]; then
  echo "$failures bench(es) failed" >&2
  exit 1
fi
