/// Regenerates Fig 4: the histogram of the per-minute Bitcoin cross-exchange
/// price range delta over two weeks, with Fréchet and Gumbel fits, the tail
/// quantiles the paper quotes (99.2 % below 100$, ~100 % below 300$), and the
/// Delta calibration at lambda = 30 bits that yields the paper's
/// Delta = 2000$ oracle configuration.

#include <cstdio>

#include "bench/bench_util.hpp"
#include "oracle/feed.hpp"
#include "stats/evt.hpp"
#include "stats/fit.hpp"
#include "stats/summary.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int, char**) {
  print_title("Fig 4 — Bitcoin price range histogram + distribution fits",
              "two weeks of per-minute snapshots (20160 samples) from the "
              "synthetic exchange feed (range ~ Fréchet(4.41, 29.3), the "
              "paper's fitted parameters; see DESIGN.md substitutions).");

  const auto deltas = oracle::range_history(oracle::FeedConfig{}, 20'160, 4);
  const auto s = stats::summarize(deltas);
  std::printf("samples=%zu  mean=%.1f$  sd=%.1f$  min=%.1f$  max=%.1f$\n\n",
              s.count, s.mean, s.stddev, s.min, s.max);

  stats::Histogram hist(0.0, 80.0, 16);
  hist.add_all(deltas);
  std::printf("histogram of delta (USD):\n%s\n", hist.ascii(48).c_str());

  // Fit the two extreme-value families the paper compares.
  const auto fits = stats::best_fit(deltas, {"Frechet", "Gumbel"});
  std::printf("fits (Kolmogorov-Smirnov, smaller = better):\n");
  for (const auto& f : fits) {
    std::printf("  %-8s KS = %.4f", f.family.c_str(), f.ks);
    if (f.family == "Frechet") {
      const auto* fr = dynamic_cast<const stats::Frechet*>(f.dist.get());
      std::printf("   alpha = %.2f, scale = %.1f  (paper: 4.41, 29.3)",
                  fr->alpha(), fr->scale());
    }
    std::printf("\n");
  }
  std::printf("best fit: %s  (paper: Fréchet)\n\n", fits.front().family.c_str());

  // Tail quantiles the paper quotes.
  std::size_t below100 = 0, below300 = 0;
  for (double d : deltas) {
    below100 += (d < 100.0);
    below300 += (d < 300.0);
  }
  std::printf("P(delta < 100$) = %.2f%%   (paper: 99.2%%)\n",
              100.0 * below100 / deltas.size());
  std::printf("P(delta < 300$) = %.2f%%   (paper: ~100%%)\n",
              100.0 * below300 / deltas.size());

  // Delta calibration: invert the fitted Fréchet tail at lambda = 30 bits.
  const auto* fr = dynamic_cast<const stats::Frechet*>(fits.front().dist.get());
  const double alpha = fr ? fr->alpha() : 4.41;
  const double scale = fr ? fr->scale() : 29.3;
  const double delta_cap = stats::range_bound_frechet(alpha, scale, 1, 30.0);
  std::printf(
      "\nDelta calibration at lambda = 30 bits: Delta = %.0f$  (paper picks "
      "2000$; one violation expected every ~2000 years of per-minute "
      "runs)\n",
      delta_cap);
  return 0;
}
