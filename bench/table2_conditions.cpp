/// Regenerates Table II: Delphi's measured communication and round counts
/// under the paper's (Delta, delta) input conditions:
///   1. Delta = O(eps),   delta = O(eps)   -> O(n² log(d/e)) bits
///   2. Delta = O(f(n)e), delta = O(eps)   -> O(n² (log(nD/e)+loglog f)) bits
///   3. Delta = O(f(n)e), delta = O(Delta) -> O(n³ ...) bits (worst case)

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

struct Condition {
  const char* name;
  double delta_max;  // Delta
  double delta;      // realized honest range
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Table II — Delphi communication/rounds under input conditions",
              "eps = 1; rho0 = eps; rounds = r_M reported by the protocol; "
              "bits are honest totals.");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 40};

  for (std::size_t n : sizes) {
    const double eps = 1.0;
    const double fn = static_cast<double>(n);  // f(n) = n
    const std::vector<Condition> conditions = {
        {"Delta=O(e), delta=O(e)", 4.0 * eps, 2.0 * eps},
        {"Delta=O(f(n)e), delta=O(e)", fn * eps, 2.0 * eps},
        {"Delta=O(f(n)e), delta=O(Delta)", fn * eps, fn * eps / 2.0},
    };

    const std::vector<int> w = {34, 8, 10, 16, 14};
    std::printf("n = %zu\n", n);
    print_row({"condition", "rounds", "levels", "bits", "bits/n^2"}, w);
    for (const auto& c : conditions) {
      protocol::DelphiParams p;
      p.space_min = 0.0;
      p.space_max = 10'000.0;
      p.rho0 = eps;
      p.eps = eps;
      p.delta_max = c.delta_max;
      const auto inputs = clustered_inputs(n, 5'000.0, c.delta, 3 + n);
      const auto r = run_delphi(Testbed::kAws, n, 5, p, inputs);
      // Round/level counts are static functions of the parameters.
      const auto rounds = p.r_max(n);
      const auto levels = p.num_levels();
      const double bits = r.megabytes * 8e6;
      print_row({c.name, std::to_string(rounds), std::to_string(levels),
                 fmt(bits, 0),
                 fmt(bits / (static_cast<double>(n) * n), 0)},
                w);
      if (!r.ok) std::printf("  !! run did not terminate\n");
    }
    std::printf("\n");
  }
  std::printf(
      "paper shape: rounds grow with log(Delta/eps * n); per-n² bits grow "
      "with the realized range delta/rho0 (row 3 >> rows 1-2).\n");
  return 0;
}
