/// Fault-impact bench: Delphi's runtime and traffic as actual faults are
/// injected — crash-from-start, garbage spray, and a healed network
/// partition. The paper evaluates fault-free executions (its t is a *bound*);
/// this bench measures what realized faults cost, and demonstrates the
/// help-after-decide mechanism (a decided majority keeps echoing so a
/// partitioned minority can finish — see delphi.cpp).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "sim/byzantine.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

protocol::DelphiParams oracle_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 200'000.0;
  p.rho0 = 10.0;
  p.eps = 2.0;
  p.delta_max = 2000.0;
  return p;
}

Result run_with_faults(std::size_t n, std::uint64_t seed,
                       const protocol::DelphiParams& params,
                       const std::vector<double>& inputs, std::size_t crashes,
                       std::size_t sprayers) {
  auto cfg = testbed_config(Testbed::kAws, n, seed);
  std::set<NodeId> byz;
  for (std::size_t i = 0; i < crashes + sprayers; ++i) {
    byz.insert(static_cast<NodeId>(n - 1 - i));
  }
  auto outcome = sim::run_nodes(
      cfg,
      [&](NodeId i) -> std::unique_ptr<net::Protocol> {
        if (i >= n - crashes) return std::make_unique<sim::SilentProtocol>();
        if (i >= n - crashes - sprayers) {
          return std::make_unique<sim::GarbageSprayProtocol>(2);
        }
        protocol::DelphiProtocol::Config c;
        c.n = n;
        c.t = max_faults(n);
        c.params = params;
        return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
      },
      byz);
  Result r;
  r.ok = outcome.all_honest_terminated;
  r.runtime_ms = static_cast<double>(outcome.metrics.honest_completion) / 1e3;
  r.megabytes = static_cast<double>(outcome.honest_bytes) / 1e6;
  r.messages = outcome.honest_msgs;
  r.outputs = outcome.honest_outputs;
  return r;
}

Result run_with_partition(std::size_t n, std::uint64_t seed,
                          const protocol::DelphiParams& params,
                          const std::vector<double>& inputs,
                          SimTime heal_at) {
  auto cfg = testbed_config(Testbed::kAws, n, seed);
  std::set<NodeId> minority;
  for (NodeId i = 0; i < max_faults(n); ++i) minority.insert(i);
  cfg.adversary = std::make_shared<sim::PartitionAdversary>(minority, heal_at);
  auto outcome = sim::run_nodes(cfg, [&](NodeId i) {
    protocol::DelphiProtocol::Config c;
    c.n = n;
    c.t = max_faults(n);
    c.params = params;
    return std::make_unique<protocol::DelphiProtocol>(c, inputs[i]);
  });
  Result r;
  r.ok = outcome.all_honest_terminated;
  r.runtime_ms = static_cast<double>(outcome.metrics.honest_completion) / 1e3;
  r.megabytes = static_cast<double>(outcome.honest_bytes) / 1e6;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::size_t n = quick ? 16 : 31;
  const std::size_t t = max_faults(n);
  const auto params = oracle_params();
  const auto inputs = clustered_inputs(n, 40'000.0, 20.0, 41);

  print_title("Fault impact — Delphi under realized faults",
              "AWS testbed, n = " + std::to_string(n) + " (t = " +
                  std::to_string(t) + "), delta = 20$ oracle workload.");

  const std::vector<int> w = {30, 14, 12, 6};
  print_row({"fault mix", "runtime_ms", "MB", "ok"}, w);

  const auto baseline =
      run_with_faults(n, 1, params, inputs, /*crashes=*/0, /*sprayers=*/0);
  print_row({"fault-free", fmt(baseline.runtime_ms, 0),
             fmt(baseline.megabytes, 2), baseline.ok ? "y" : "N"},
            w);
  for (std::size_t f = 1; f <= t; f = (f >= t ? t + 1 : std::min(t, f * 2 + 1))) {
    const auto r = run_with_faults(n, 1 + f, params, inputs, f, 0);
    print_row({std::to_string(f) + " crashed", fmt(r.runtime_ms, 0),
               fmt(r.megabytes, 2), r.ok ? "y" : "N"},
              w);
  }
  {
    const auto r = run_with_faults(n, 8, params, inputs, t / 2, t - t / 2);
    print_row({std::to_string(t / 2) + " crashed + " +
                   std::to_string(t - t / 2) + " garbage sprayers",
               fmt(r.runtime_ms, 0), fmt(r.megabytes, 2), r.ok ? "y" : "N"},
              w);
  }

  std::printf("\npartition of the t-node minority, healed at T "
              "(help-after-decide):\n");
  print_row({"heal time", "completion_ms", "MB", "ok"}, w);
  const std::vector<SimTime> heals =
      quick ? std::vector<SimTime>{0, 2 * kSecond}
            : std::vector<SimTime>{0, kSecond, 2 * kSecond, 5 * kSecond};
  for (SimTime heal : heals) {
    const auto r = run_with_partition(n, 51, params, inputs, heal);
    print_row({fmt(static_cast<double>(heal) / 1000.0, 0) + " ms",
               fmt(r.runtime_ms, 0), fmt(r.megabytes, 2), r.ok ? "y" : "N"},
              w);
  }

  std::printf(
      "\nexpected shape: traffic drops roughly linearly with crashed nodes\n"
      "(fewer senders), while runtime *rises* — with f nodes silent every\n"
      "quorum needs all of the slowest n - t - f + ... responders, so the\n"
      "slack the latency tail normally provides disappears (worst at f = t,\n"
      "where quorums are exact). Garbage sprayers cost validation CPU but\n"
      "change nothing else. The partitioned minority finishes ~one round-trip\n"
      "after the heal, because decided nodes keep serving echoes instead of\n"
      "going silent.\n");
  return 0;
}
