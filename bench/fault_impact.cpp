/// Fault-impact bench: Delphi's runtime and traffic as actual faults are
/// injected — crash-from-start, garbage spray, and a healed network
/// partition. The paper evaluates fault-free executions (its t is a *bound*);
/// this bench measures what realized faults cost, and demonstrates the
/// help-after-decide mechanism (a decided majority keeps echoing so a
/// partitioned minority can finish — see delphi.cpp).
///
/// Every run is a declarative ScenarioSpec (crashes= / byzantine= /
/// adversary= are first-class spec fields since the fault plane landed) and
/// the whole grid executes through bench::run_specs — multi-core, in spec
/// order, bit-identical to the historical serial loops.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;
using scenario::ScenarioSpec;

namespace {

/// The paper's AWS oracle deployment: delta = 20$ price workload (explicit
/// inputs so the historical workload seed 41 is reproduced exactly).
ScenarioSpec oracle_spec(std::size_t n, std::uint64_t seed,
                         const std::vector<double>& inputs) {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 200'000.0;
  p.rho0 = 10.0;
  p.eps = 2.0;
  p.delta_max = 2000.0;
  auto spec = delphi_spec(Testbed::kAws, n, seed, p, inputs);
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::size_t n = quick ? 16 : 31;
  const std::size_t t = max_faults(n);
  const auto inputs = clustered_inputs(n, 40'000.0, 20.0, 41);

  print_title("Fault impact — Delphi under realized faults",
              "AWS testbed, n = " + std::to_string(n) + " (t = " +
                  std::to_string(t) + "), delta = 20$ oracle workload.");

  // Declarative fault grid: fault-free baseline, escalating crash counts,
  // and a crash + garbage-spray mix — one spec each.
  std::vector<ScenarioSpec> fault_specs;
  std::vector<std::string> fault_labels;
  fault_specs.push_back(oracle_spec(n, 1, inputs));
  fault_labels.push_back("fault-free");
  for (std::size_t f = 1; f <= t; f = (f >= t ? t + 1 : std::min(t, f * 2 + 1))) {
    auto spec = oracle_spec(n, 1 + f, inputs);
    spec.crashes = f;
    fault_specs.push_back(spec);
    fault_labels.push_back(std::to_string(f) + " crashed");
  }
  {
    auto spec = oracle_spec(n, 8, inputs);
    spec.crashes = t / 2;
    spec.byzantine = scenario::parse_byzantine(
        "garbage:64:" + std::to_string(t - t / 2));
    fault_specs.push_back(spec);
    fault_labels.push_back(std::to_string(t / 2) + " crashed + " +
                           std::to_string(t - t / 2) + " garbage sprayers");
  }

  const std::vector<int> w = {30, 14, 12, 6};
  print_row({"fault mix", "runtime_ms", "MB", "ok"}, w);
  const auto fault_results = run_specs(fault_specs);
  for (std::size_t i = 0; i < fault_results.size(); ++i) {
    const auto& r = fault_results[i];
    print_row({fault_labels[i], fmt(r.runtime_ms, 0), fmt(r.megabytes, 2),
               r.ok ? "y" : "N"},
              w);
  }

  std::printf("\npartition of the t-node minority, healed at T "
              "(help-after-decide):\n");
  print_row({"heal time", "completion_ms", "MB", "ok"}, w);
  const std::vector<SimTime> heals =
      quick ? std::vector<SimTime>{0, 2 * kSecond}
            : std::vector<SimTime>{0, kSecond, 2 * kSecond, 5 * kSecond};
  std::vector<ScenarioSpec> heal_specs;
  for (SimTime heal : heals) {
    auto spec = oracle_spec(n, 51, inputs);
    spec.adversary = scenario::parse_adversary(
        "partition:" + std::to_string(t) + ":" + std::to_string(heal));
    heal_specs.push_back(spec);
  }
  const auto heal_results = run_specs(heal_specs);
  for (std::size_t i = 0; i < heal_results.size(); ++i) {
    const auto& r = heal_results[i];
    print_row({fmt(static_cast<double>(heals[i]) / 1000.0, 0) + " ms",
               fmt(r.runtime_ms, 0), fmt(r.megabytes, 2), r.ok ? "y" : "N"},
              w);
  }

  std::printf(
      "\nexpected shape: traffic drops roughly linearly with crashed nodes\n"
      "(fewer senders), while runtime *rises* — with f nodes silent every\n"
      "quorum needs all of the slowest n - t - f + ... responders, so the\n"
      "slack the latency tail normally provides disappears (worst at f = t,\n"
      "where quorums are exact). Garbage sprayers cost validation CPU but\n"
      "change nothing else. The partitioned minority finishes ~one round-trip\n"
      "after the heal, because decided nodes keep serving echoes instead of\n"
      "going silent.\n");
  return 0;
}
