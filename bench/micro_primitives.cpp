/// Microbenchmarks (google-benchmark) for the hot primitives underneath the
/// protocol stack: SHA-256 / HMAC throughput (authenticated channels),
/// serialization, the BinAA state machine, and raw simulator event
/// throughput. These bound how large an n the repo's experiments can drive.

#include <benchmark/benchmark.h>

#include "binaa/core.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "delphi/message.hpp"
#include "net/protocol.hpp"
#include "sim/simulator.hpp"
#include "transport/frame.hpp"

namespace {

using namespace delphi;

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

/// The pre-PR-5 per-frame MAC cost: a full HMAC key schedule (ipad/opad
/// absorption) on every tag — what the TCP data plane used to pay per frame.
void BM_HmacSha256(benchmark::State& state) {
  crypto::Key key{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

/// The post-PR-5 per-frame MAC cost: tag from precomputed ipad/opad
/// midstates (crypto::HmacKey) — two compression finishes per tag. The
/// BM_HmacSha256 / BM_HmacKeyTag ratio is the per-frame HMAC win the TCP
/// data plane keeps per established link.
void BM_HmacKeyTag(benchmark::State& state) {
  crypto::Key key{};
  const crypto::HmacKey hk(key);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)),
                                 0xCD);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hk.tag(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacKeyTag)->Arg(64)->Arg(1024);

/// Authenticated frame encode (unicast path): shared body + per-link tag.
void BM_FrameEncode(benchmark::State& state) {
  crypto::Key key{};
  const crypto::HmacKey hk(key);
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)),
                                    0xEE);
  for (auto _ : state) {
    const auto body = transport::encode_frame_body(5, payload, true);
    benchmark::DoNotOptimize(transport::frame_tag(hk, *body));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FrameEncode)->Arg(64)->Arg(1024);

/// Authenticated frame decode + MAC verify through the incremental parser
/// (zero-copy next_view, pooled buffer — the TCP receive path per frame).
void BM_FrameDecode(benchmark::State& state) {
  crypto::Key key{};
  const crypto::HmacKey hk(key);
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)),
                                    0xEE);
  const auto frame = transport::encode_frame(5, payload, &hk);
  transport::FrameParser parser(&hk);
  for (auto _ : state) {
    parser.feed(frame);
    benchmark::DoNotOptimize(parser.next_view());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_FrameDecode)->Arg(64)->Arg(1024);

void BM_BundleSerialize(benchmark::State& state) {
  std::vector<protocol::ExplicitEcho> ex;
  for (std::int64_t k = 0; k < state.range(0); ++k) {
    ex.push_back(protocol::ExplicitEcho{0, 20'000 + k, 1, 7, 1 << 20});
  }
  protocol::DelphiBundle bundle({{0, 1, 7, 0}}, ex);
  for (auto _ : state) {
    ByteWriter w(bundle.wire_size());
    bundle.serialize(w);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_BundleSerialize)->Arg(8)->Arg(64);

void BM_BundleDecode(benchmark::State& state) {
  std::vector<protocol::ExplicitEcho> ex;
  for (std::int64_t k = 0; k < state.range(0); ++k) {
    ex.push_back(protocol::ExplicitEcho{0, 20'000 + k, 1, 7, 1 << 20});
  }
  protocol::DelphiBundle bundle({{0, 1, 7, 0}}, ex);
  ByteWriter w;
  bundle.serialize(w);
  for (auto _ : state) {
    ByteReader r(w.data());
    benchmark::DoNotOptimize(protocol::DelphiBundle::decode(r));
  }
}
BENCHMARK(BM_BundleDecode)->Arg(8)->Arg(64);

void BM_BinAaRound(benchmark::State& state) {
  // One full quorum wave through a BinAA core: n echoes + triggers.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    binaa::BinAaCore core(binaa::BinAaCore::Config{n, (n - 1) / 3, 10});
    std::vector<binaa::EchoAction> out;
    core.start(true, out);
    for (NodeId j = 0; j < n; ++j) {
      core.on_echo(1, 1, core.scale(), j, out);
      core.on_echo(2, 1, core.scale(), j, out);
    }
    benchmark::DoNotOptimize(core.current_round());
  }
}
BENCHMARK(BM_BinAaRound)->Arg(16)->Arg(64)->Arg(160);

/// Raw simulator throughput: a ping-pong pair exchanging K messages.
class PingPong final : public net::Protocol {
 public:
  explicit PingPong(int budget) : budget_(budget) {}
  void on_start(net::Context& ctx) override {
    if (ctx.self() == 0) send(ctx, 1);
  }
  void on_message(net::Context& ctx, NodeId from, std::uint32_t,
                  const net::MessageBody&) override {
    if (budget_-- > 0) send(ctx, from);
  }
  bool terminated() const override { return budget_ <= 0; }

 private:
  class Ping final : public net::MessageBody {
   public:
    std::size_t wire_size() const override { return 1; }
    void serialize(ByteWriter& w) const override { w.u8(0); }
    std::string debug() const override { return "ping"; }
  };
  void send(net::Context& ctx, NodeId to) {
    ctx.send(to, 0, std::make_shared<Ping>());
  }
  int budget_;
};

void BM_SimulatorEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::SimConfig cfg;
    cfg.n = 2;
    cfg.seed = 1;
    cfg.latency = std::make_shared<sim::UniformLatency>(10, 20);
    sim::Simulator sim(cfg);
    sim.add_node(std::make_unique<PingPong>(5'000));
    sim.add_node(std::make_unique<PingPong>(5'000));
    sim.run();
    benchmark::DoNotOptimize(sim.metrics().events_processed);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10'000);
}
BENCHMARK(BM_SimulatorEvents);

void BM_RngUniform(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.uniform());
}
BENCHMARK(BM_RngUniform);

}  // namespace

BENCHMARK_MAIN();
