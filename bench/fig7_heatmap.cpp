/// Regenerates Fig 7: heatmaps of Delphi's runtime against the agreement
/// ratio Delta/eps (y axis — drives the round count r_M) and the range ratio
/// delta/rho0 (x axis — drives per-round communication volume), on both
/// testbeds.
///
/// Reproduction target (shape): on AWS the runtime climbs along the
/// *agreement ratio* axis (rounds x WAN RTT dominate); on CPS it climbs along
/// the *range ratio* axis (per-round bytes through slow uplinks dominate).
///
/// Runtime note: the full CPS grid reaches the paper's extreme corner
/// (Delta/eps = 1e5, delta/rho0 = 1e3 at n = 85 -> r_M = 40 rounds and
/// hundreds of active checkpoints), which takes tens of minutes of wall
/// clock; pass --quick for a 2x2 grid that finishes in seconds.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

/// One heatmap cell: runtime of Delphi with Delta/eps = ar, delta/rho0 = rr.
double cell_ms(Testbed tb, std::size_t n, double delta_max, double agreement,
               double range_ratio, std::uint64_t seed) {
  protocol::DelphiParams p;
  p.delta_max = delta_max;
  p.eps = delta_max / agreement;
  const double realized_delta = delta_max / 4.0;  // workload spread
  p.rho0 = std::max(realized_delta / range_ratio, 1e-6);
  if (p.rho0 > p.delta_max) p.rho0 = p.delta_max;
  p.space_min = 0.0;
  p.space_max = 64.0 * delta_max;
  const auto inputs =
      clustered_inputs(n, 8.0 * delta_max, realized_delta, seed);
  const auto r = run_delphi(tb, n, seed, p, inputs);
  return r.ok ? r.runtime_ms : -1.0;
}

void heatmap(Testbed tb, std::size_t n, double delta_max,
             const std::vector<double>& agreement_ratios,
             const std::vector<double>& range_ratios) {
  std::printf("%s, n = %zu (runtime in seconds)\n",
              tb == Testbed::kAws ? "AWS" : "CPS", n);
  std::printf("%14s", "A-ratio \\ R-ratio");
  for (double rr : range_ratios) std::printf("%10.0f", rr);
  std::printf("\n");
  for (double ar : agreement_ratios) {
    std::printf("%14.0f    ", ar);
    for (double rr : range_ratios) {
      const double ms = cell_ms(tb, n, delta_max, ar, rr, 17);
      std::printf("%10.2f", ms / 1000.0);
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Fig 7 — Delphi runtime vs agreement ratio and range ratio",
              "agreement ratio Delta/eps controls rounds; range ratio "
              "delta/rho0 controls per-round volume.");

  if (quick) {
    heatmap(Testbed::kAws, 16, 500.0, {20, 400}, {1, 20});
    heatmap(Testbed::kCps, 16, 500.0, {100, 10'000}, {1, 100});
  } else {
    // Paper grids: AWS n = 64, ratios {20..2000} x {1..90};
    //              CPS n = 85, ratios {1e2..1e5} x {1..1e3}.
    heatmap(Testbed::kAws, 64, 2000.0, {20, 100, 400, 2000}, {1, 4, 20, 90});
    heatmap(Testbed::kCps, 85, 500.0, {100, 1'000, 10'000, 100'000},
            {1, 10, 100, 1'000});
  }
  std::printf(
      "paper shape: AWS runtimes increase mainly top-to-bottom (agreement "
      "ratio / rounds); CPS runtimes increase mainly left-to-right (range "
      "ratio / per-round bytes).\n");
  return 0;
}
