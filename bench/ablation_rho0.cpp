/// Ablation: the rho0 trade-off the paper discusses in §III-B and exploits
/// in Fig 6a (rho0 = 10$ there vs rho0 = eps = 2$ in Fig 6b): a larger
/// level-0 separator cuts active checkpoints (bytes) and rounds, at the cost
/// of a larger worst-case validity relaxation max(rho0, delta).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "stats/summary.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::size_t n = quick ? 16 : 40;

  print_title("Ablation — rho0 sweep (validity relaxation vs cost)",
              "oracle workload delta = 20$, Delta = 2000$, eps = 2$; "
              "measured distance from the honest average quantifies the "
              "relaxation actually paid.");

  const std::vector<int> w = {10, 10, 12, 12, 14, 18};
  print_row({"rho0", "levels", "rounds", "MB", "runtime_ms",
             "|out - honest avg|"},
            w);

  const auto inputs = clustered_inputs(n, 40'000.0, 20.0, 77);
  const auto s = stats::summarize(inputs);

  for (double rho0 : {2.0, 10.0, 50.0, 250.0, 2000.0}) {
    protocol::DelphiParams p;
    p.space_min = 0.0;
    p.space_max = 200'000.0;
    p.rho0 = rho0;
    p.eps = 2.0;
    p.delta_max = 2000.0;
    const auto r = run_delphi(Testbed::kAws, n, 5, p, inputs);
    const double dist =
        r.outputs.empty() ? -1.0 : std::fabs(r.outputs.front() - s.mean);
    print_row({fmt(rho0, 0), std::to_string(p.num_levels()),
               std::to_string(p.r_max(n)), fmt(r.megabytes, 2),
               fmt(r.runtime_ms, 0), fmt(dist, 2) + "$"},
              w);
    if (!r.ok) std::printf("  !! run did not terminate\n");
  }
  std::printf(
      "\npaper discussion: rho0 = Delta guarantees termination in one level "
      "but pays up to Delta of relaxation; small rho0 minimizes relaxation "
      "but costs rounds/bytes. Fig 6a picks rho0 = 10$ as the middle "
      "ground.\n");
  return 0;
}
