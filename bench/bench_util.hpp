#pragma once
/// Shared infrastructure for the experiment benches: testbed configurations
/// (AWS-geo / CPS, matching §VI-C), controlled-range workload generators,
/// one-call protocol runners, and table printing.
///
/// Every bench binary regenerates one table/figure of the paper; see
/// DESIGN.md §3 for the index and EXPERIMENTS.md for paper-vs-measured notes.

#include <cstdint>
#include <string>
#include <vector>

#include "abraham/abraham.hpp"
#include "acs/acs.hpp"
#include "delphi/delphi.hpp"
#include "dolev/dolev.hpp"
#include "scenario/runtime.hpp"
#include "scenario/spec.hpp"
#include "sim/harness.hpp"

namespace delphi::bench {

/// Which simulated testbed to run on (§VI-C).
enum class Testbed { kAws, kCps };

/// Map to the scenario layer's testbed kind (the construction point).
scenario::TestbedKind to_scenario(Testbed tb) noexcept;

/// Simulation config for a testbed: latency model + cost model.
sim::SimConfig testbed_config(Testbed tb, std::size_t n, std::uint64_t seed);

/// Default CPU charge per threshold-coin toss, per testbed — the stand-in
/// for the O(n) pairing bill of a real common coin (DESIGN.md). Pairings run
/// ~1 ms on a Pi-class core and ~0.25 ms on t2.micro-class cores; a Cachin
/// coin verifies a quorum of shares.
SimTime default_coin_cost(Testbed tb, std::size_t n);

/// Honest inputs clustered with *realized range exactly delta* around
/// `center` (endpoints pinned, the rest uniform inside) — this is how the
/// paper's "Delphi delta = 20$ / 180$" curves are driven.
std::vector<double> clustered_inputs(std::size_t n, double center,
                                     double delta, std::uint64_t seed);

/// Result of one protocol run.
struct Result {
  bool ok = false;
  double runtime_ms = 0.0;   ///< honest completion time
  double megabytes = 0.0;    ///< total honest traffic
  std::uint64_t messages = 0;
  std::vector<double> outputs;
};

/// Project a scenario RunReport onto the bench result shape.
Result from_report(const scenario::RunReport& rep);

/// ScenarioSpec builders mirroring the one-call runners below — use these
/// to batch independent runs through scenario::SweepRunner (multi-core
/// sweeps) while producing numbers identical to the serial runners.
scenario::ScenarioSpec delphi_spec(Testbed tb, std::size_t n,
                                   std::uint64_t seed,
                                   const protocol::DelphiParams& params,
                                   const std::vector<double>& inputs);
scenario::ScenarioSpec abraham_spec(Testbed tb, std::size_t n,
                                    std::uint64_t seed, std::uint32_t rounds,
                                    double space_min, double space_max,
                                    const std::vector<double>& inputs);
scenario::ScenarioSpec fin_spec(Testbed tb, std::size_t n, std::uint64_t seed,
                                const std::vector<double>& inputs,
                                SimTime coin_cost_us = -1);
scenario::ScenarioSpec dolev_spec(Testbed tb, std::size_t n,
                                  std::uint64_t seed, std::uint32_t rounds,
                                  double space_min, double space_max,
                                  const std::vector<double>& inputs);

/// Run a batch of specs across `jobs` worker threads (0 = all cores) and
/// project each report; results are in spec order and bit-identical to
/// running the specs one by one.
std::vector<Result> run_specs(const std::vector<scenario::ScenarioSpec>& specs,
                              unsigned jobs = 0);

/// One labeled point on the standard fault axis.
struct FaultCase {
  std::string name;              ///< row label, e.g. "partition(t,500ms)"
  scenario::ScenarioSpec spec;   ///< the base spec with the fault applied
};

/// The standard fault axis for sweeps: the base spec replicated under every
/// declarative fault family (fault-free first, then crashes at the
/// protocol's resilience bound t, both byzantine= behaviours, and all four
/// adversary= strategies, each sized relative to t). Feed the specs straight
/// into run_specs / SweepRunner — a fault dimension for any protocol × n
/// grid (bench_fault_sweep is the canonical consumer).
std::vector<FaultCase> fault_axis(const scenario::ScenarioSpec& base);

/// Run Delphi on a testbed.
Result run_delphi(Testbed tb, std::size_t n, std::uint64_t seed,
                  const protocol::DelphiParams& params,
                  const std::vector<double>& inputs);

/// Run the Abraham et al. baseline.
Result run_abraham(Testbed tb, std::size_t n, std::uint64_t seed,
                   std::uint32_t rounds, double space_min, double space_max,
                   const std::vector<double>& inputs);

/// Run the FIN-style ACS baseline (coin cost defaulted per testbed; pass
/// `coin_cost_us >= 0` to override).
Result run_fin(Testbed tb, std::size_t n, std::uint64_t seed,
               const std::vector<double>& inputs,
               SimTime coin_cost_us = -1);

/// Run the Dolev et al. (JACM '86) multicast AA baseline; tolerates
/// t = (n-1)/5 faults.
Result run_dolev(Testbed tb, std::size_t n, std::uint64_t seed,
                 std::uint32_t rounds, double space_min, double space_max,
                 const std::vector<double>& inputs);

/// --quick on the command line trims sweeps for CI-speed runs.
bool quick_mode(int argc, char** argv);

/// --xl on the command line adds extra-large system sizes beyond the paper's
/// sweeps (e.g. fig6c's n = 211 point) — opt-in because they multiply run
/// time; the optimized simulator makes them practical at all.
bool xl_mode(int argc, char** argv);

/// Pretty-printing helpers.
void print_title(const std::string& title, const std::string& subtitle);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);
std::string fmt(double v, int precision = 2);
std::string fmt_int(std::uint64_t v);

}  // namespace delphi::bench
