/// Ablation: common coin vs local coin for asynchronous binary agreement —
/// the setup-freeness / round-complexity trade behind Table I's WaterBear
/// row.
///
/// MMR (aba/) tosses a *common* coin: expected O(1) rounds, but each toss
/// costs threshold-crypto CPU (n/3+1 pairings in real deployments) and the
/// coin needs a DKG-style setup. Ben-Or (benor/) tosses *local* coins: zero
/// crypto, zero setup (WaterBear's "information-theoretic" corner), but
/// split inputs terminate only when enough local coins align — expected
/// rounds grow exponentially in the worst case.
///
/// Sweep: n × {unanimous, split} inputs × both protocols, on the CPS model
/// (where coin crypto hurts most). Reported: rounds, runtime, traffic.

#include <algorithm>
#include <cstdio>

#include "aba/aba.hpp"
#include "bench/bench_util.hpp"
#include "benor/benor.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

struct AbaResult {
  bool ok = false;
  double runtime_ms = 0.0;
  double kilobytes = 0.0;
  std::uint32_t max_rounds = 0;
};

AbaResult run_mmr(std::size_t n, std::uint64_t seed, bool split) {
  auto cfg = testbed_config(Testbed::kCps, n, seed);
  static crypto::CommonCoin coin(0xC01Cu);
  sim::Simulator sim(cfg);
  for (NodeId i = 0; i < n; ++i) {
    aba::AbaInstance::Config c;
    c.n = n;
    c.t = max_faults(n);
    c.coin = &coin;
    c.coin_compute_us = default_coin_cost(Testbed::kCps, n);
    c.instance_id = seed;
    sim.add_node(std::make_unique<aba::AbaProtocol>(c, split ? i % 2 == 0
                                                             : true));
  }
  AbaResult r;
  r.ok = sim.run();
  r.runtime_ms = static_cast<double>(sim.metrics().honest_completion) / 1e3;
  r.kilobytes = static_cast<double>(sim.metrics().total_bytes) / 1e3;
  return r;
}

AbaResult run_benor(std::size_t n, std::uint64_t seed, bool split) {
  auto cfg = testbed_config(Testbed::kCps, n, seed);
  sim::Simulator sim(cfg);
  benor::BenOrProtocol::Config c;
  c.n = n;
  c.t = (n - 1) / 5;
  for (NodeId i = 0; i < n; ++i) {
    sim.add_node(
        std::make_unique<benor::BenOrProtocol>(c, split ? i % 2 == 0 : true));
  }
  AbaResult r;
  r.ok = sim.run();
  r.runtime_ms = static_cast<double>(sim.metrics().honest_completion) / 1e3;
  r.kilobytes = static_cast<double>(sim.metrics().total_bytes) / 1e3;
  for (NodeId i = 0; i < n; ++i) {
    r.max_rounds = std::max(
        r.max_rounds, sim.node_as<benor::BenOrProtocol>(i).rounds_used());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title(
      "Ablation — common coin (MMR) vs local coin (Ben-Or) binary BA",
      "CPS testbed; MMR charges threshold-coin CPU per round, Ben-Or is "
      "crypto-free but needs coin-alignment luck on split inputs. Medians "
      "over seeds.");

  const std::vector<int> w = {6, 12, 22, 12, 12, 10};
  print_row({"n", "inputs", "protocol", "runtime_ms", "KB", "rounds"}, w);

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{6, 11} : std::vector<std::size_t>{6, 11, 16, 26};
  const std::size_t seeds = quick ? 3 : 9;

  for (std::size_t n : sizes) {
    for (const bool split : {false, true}) {
      const char* in_name = split ? "split" : "unanimous";
      std::vector<double> mmr_ms, ben_ms, ben_rounds;
      double mmr_kb = 0, ben_kb = 0;
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        const auto m = run_mmr(n, s, split);
        const auto b = run_benor(n, s, split);
        if (!m.ok || !b.ok) continue;
        mmr_ms.push_back(m.runtime_ms);
        ben_ms.push_back(b.runtime_ms);
        ben_rounds.push_back(b.max_rounds);
        mmr_kb += m.kilobytes / static_cast<double>(seeds);
        ben_kb += b.kilobytes / static_cast<double>(seeds);
      }
      auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v.empty() ? 0.0 : v[v.size() / 2];
      };
      print_row({std::to_string(n), in_name, "MMR + common coin",
                 fmt(median(mmr_ms), 0), fmt(mmr_kb, 1), "~2"},
                w);
      print_row({std::to_string(n), in_name, "Ben-Or local coin",
                 fmt(median(ben_ms), 0), fmt(ben_kb, 1),
                 fmt(median(ben_rounds), 0)},
                w);
    }
  }

  std::printf(
      "\nexpected shape: on unanimous inputs Ben-Or matches or beats MMR\n"
      "(one deterministic round, zero crypto); on split inputs Ben-Or's\n"
      "round count grows with n (local coins must align) while MMR stays\n"
      "~2 rounds but pays the coin's CPU bill every round — the Table I\n"
      "trade between WaterBear-style IT protocols and coin-based ones.\n");
  return 0;
}
