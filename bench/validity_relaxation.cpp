/// Regenerates the paper's §VI-E validity-relaxation analysis: how far
/// Delphi's output sits from the honest-input average, compared with the
/// exact convex protocols (FIN/Abraham whose outputs stay inside [m, M]).
///
/// Paper numbers: oracle network — Delphi ~25$ from the honest average in
/// expectation vs ~12.5$ for exact protocols (0.05 % of a 40000$ price);
/// drones — ~2.6 m vs ~1.3 m.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "drone/detection.hpp"
#include "oracle/feed.hpp"
#include "stats/summary.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

struct Accum {
  double delphi_dist = 0.0;
  double exact_dist = 0.0;
  double delta_sum = 0.0;
  int trials = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const int trials = quick ? 3 : 12;
  const std::size_t n = 16;

  print_title("§VI-E — validity relaxation in practice",
              "distance of the agreed output from the honest-input average, "
              "Delphi vs an exact convex protocol (FIN-style ACS median), "
              "averaged over independent runs.");

  // ---------------------------------------------------------------- oracle
  {
    Accum acc;
    auto params = protocol::DelphiParams::oracle_network();
    for (int trial = 0; trial < trials; ++trial) {
      oracle::PriceFeed feed(oracle::FeedConfig{}, Rng(100 + trial));
      const auto snapshot = feed.next_minute();
      Rng obs(200 + trial);
      std::vector<double> inputs(n);
      for (auto& v : inputs) v = oracle::node_observation(snapshot, 3, obs);
      const auto s = stats::summarize(inputs);

      const auto d = run_delphi(Testbed::kAws, n, 300 + trial, params, inputs);
      const auto f = run_fin(Testbed::kAws, n, 400 + trial, inputs);
      if (!d.ok || !f.ok) continue;
      acc.delphi_dist += std::fabs(d.outputs.front() - s.mean);
      acc.exact_dist += std::fabs(f.outputs.front() - s.mean);
      acc.delta_sum += s.range();
      ++acc.trials;
    }
    std::printf("oracle network (n = %zu, %d runs):\n", n, acc.trials);
    std::printf("  mean honest range delta: %.1f$  (paper: ~25$)\n",
                acc.delta_sum / acc.trials);
    std::printf("  |Delphi - honest avg|:   %.1f$  (paper: ~delta, 25$)\n",
                acc.delphi_dist / acc.trials);
    std::printf("  |exact  - honest avg|:   %.1f$  (paper: ~delta/2, 12.5$)\n",
                acc.exact_dist / acc.trials);
    std::printf("  relative error on a %.0f$ price: %.3f%%  (paper: 0.05%%)\n\n",
                40'000.0,
                100.0 * acc.delphi_dist / acc.trials / 40'000.0);
  }

  // ----------------------------------------------------------------- drone
  {
    Accum acc;
    auto params = protocol::DelphiParams::drone_cps();
    drone::DetectionModel model{drone::DetectionConfig{}};
    for (int trial = 0; trial < trials; ++trial) {
      Rng rng(500 + trial);
      const drone::Vec2 gt{25.0, -40.0};
      const auto obs = drone::fleet_observations(model, gt, n, rng);
      std::vector<double> inputs(n);
      for (std::size_t i = 0; i < n; ++i) inputs[i] = obs[i].x;
      const auto s = stats::summarize(inputs);

      const auto d = run_delphi(Testbed::kCps, n, 600 + trial, params, inputs);
      const auto f = run_fin(Testbed::kCps, n, 700 + trial, inputs);
      if (!d.ok || !f.ok) continue;
      acc.delphi_dist += std::fabs(d.outputs.front() - s.mean);
      acc.exact_dist += std::fabs(f.outputs.front() - s.mean);
      acc.delta_sum += s.range();
      ++acc.trials;
    }
    std::printf("drone localization, per coordinate (n = %zu, %d runs):\n", n,
                acc.trials);
    std::printf("  mean honest range delta: %.2f m (paper: ~0.92 m)\n",
                acc.delta_sum / acc.trials);
    std::printf("  |Delphi - honest avg|:   %.2f m (paper: <= ~2.6 m)\n",
                acc.delphi_dist / acc.trials);
    std::printf("  |exact  - honest avg|:   %.2f m (paper: ~1.3 m)\n",
                acc.exact_dist / acc.trials);
  }
  return 0;
}
