/// Fault sweep: every declarative fault family (adversary= network attacks
/// and byzantine= node behaviours, plus crash-from-start) crossed with a
/// protocol × n grid — the scenario-diversity bench the fault plane enables.
/// The paper evaluates fault-free executions; this sweep measures how much
/// of each protocol's headroom realized faults consume, and that every
/// protocol still terminates under all of them (asynchronous safety is only
/// interesting when the adversary actually shows up).
///
/// All runs are independent ScenarioSpecs fanned across cores by
/// bench::run_specs (SweepRunner) — the fault axis is just one more sweep
/// dimension, bit-identical to serial execution.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;
using scenario::ScenarioSpec;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::vector<const char*> protocols = {"delphi", "abraham", "dolev",
                                              "fin"};
  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{8, 16}
            : std::vector<std::size_t>{16, 31, 61};

  print_title("Fault sweep — every fault family x protocol x n",
              "AWS testbed, delta = 20$ oracle workload; adversary= delays "
              "and reorders,\nbyzantine= wraps faulted nodes, crashes= "
              "silences them. All runs via SweepRunner.");

  // Build the full grid first so the sweep saturates every core.
  std::vector<FaultCase> grid;
  for (const char* protocol : protocols) {
    for (const std::size_t n : sizes) {
      ScenarioSpec base;
      base.protocol = protocol;
      base.testbed = scenario::TestbedKind::kAws;
      base.n = n;
      base.seed = 1;
      for (auto& fc : fault_axis(base)) grid.push_back(std::move(fc));
    }
  }
  std::vector<ScenarioSpec> specs;
  specs.reserve(grid.size());
  for (const auto& fc : grid) specs.push_back(fc.spec);
  const auto results = run_specs(specs);

  const std::vector<int> w = {10, 6, 26, 14, 10, 10, 6};
  print_row({"protocol", "n", "fault", "runtime_ms", "MB", "msgs", "ok"}, w);
  std::size_t failures = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (!r.ok) ++failures;
    print_row({grid[i].spec.protocol, std::to_string(grid[i].spec.n),
               grid[i].name, fmt(r.runtime_ms, 0), fmt(r.megabytes, 2),
               fmt_int(r.messages), r.ok ? "y" : "N"},
              w);
  }

  std::printf(
      "\nexpected shape: crash(t) is the costliest benign fault (quorums are\n"
      "exact, the latency tail's slack is gone); partition completion tracks\n"
      "the heal time plus ~one round-trip (help-after-decide); random-delay\n"
      "and burst stretch runtime by roughly the extra delay per round while\n"
      "traffic stays flat; garbage sprayers add drops, not honest traffic.\n");
  if (failures > 0) {
    std::fprintf(stderr, "%zu faulted run(s) did not terminate\n", failures);
    return 1;
  }
  return 0;
}
