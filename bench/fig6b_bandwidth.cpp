/// Regenerates Fig 6b: network bandwidth vs n on AWS for the oracle-network
/// workload. Paper config: rho0 = eps = 2$, Delta = 2000$; Delphi curves for
/// delta = 20$ and delta = 180$, baselines FIN and Abraham at delta = 20$.
///
/// Reproduction target (shape): Delphi's MB grow ~n² and sit well below the
/// baselines' ~n³ curves at large n; the gap widens with n.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Fig 6b — bandwidth vs n on AWS (oracle network)",
              "Delphi config rho0 = eps = 2$, Delta = 2000$; honest traffic "
              "in MB per agreement.");

  protocol::DelphiParams params;
  params.space_min = 0.0;
  params.space_max = 200'000.0;
  params.rho0 = 2.0;
  params.eps = 2.0;
  params.delta_max = 2000.0;

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{16, 40}
            : std::vector<std::size_t>{16, 40, 64, 112, 160};

  const std::vector<int> w = {8, 14, 16, 14, 18};
  print_row({"n", "Delphi d=20", "Delphi d=180", "FIN", "Abraham d=20"}, w);

  for (std::size_t n : sizes) {
    const auto in20 = clustered_inputs(n, 40'000.0, 20.0, 7 + n);
    const auto in180 = clustered_inputs(n, 40'000.0, 180.0, 9 + n);
    const auto d20 = run_delphi(Testbed::kAws, n, 1, params, in20);
    const auto d180 = run_delphi(Testbed::kAws, n, 2, params, in180);
    // The baselines' traffic is delta-independent (RBC everything), so one
    // delta suffices — matching the paper's single FIN curve.
    const auto f = run_fin(Testbed::kAws, n, 3, in20);
    const auto a = run_abraham(Testbed::kAws, n, 4, /*rounds=*/10, 0.0,
                               200'000.0, in20);
    print_row({std::to_string(n), fmt(d20.megabytes, 2),
               fmt(d180.megabytes, 2), fmt(f.megabytes, 2),
               fmt(a.megabytes, 2)},
              w);
  }
  std::printf(
      "\npaper shape: Delphi grows ~n^2 vs the baselines' ~n^3 and falls "
      "increasingly below Abraham with n. Note: absolute Delphi bytes here "
      "are ~20x the paper's because bundles use plain per-entry coding "
      "rather than the authors' grouped 3-bit VAL codes — see EXPERIMENTS.md "
      "(Fig 6b) and ablation_codec for the compressed-codec accounting.\n");
  return 0;
}
