/// Regenerates Fig 6c: runtime vs n on the (simulated) Raspberry-Pi CPS
/// testbed for the drone localization workload.
///
/// Paper config: Delta = 50 m, rho0 = eps = 0.5 m; Delphi curves for
/// delta = 5 m and delta = 50 m; baselines FIN and Abraham at delta = 5 m;
/// n in {43, 85, 127, 169}.
///
/// Reproduction target (shape): on CPS the per-round traffic volume and CPU
/// dominate (not latency), so Delphi wins at *all* n, reaching ~8x at
/// n = 169 — and unlike AWS, Delphi's runtime is visibly delta-sensitive.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const bool xl = xl_mode(argc, argv);
  print_title("Fig 6c — runtime vs n on the CPS testbed (drone localization)",
              "Delphi config Delta = 50 m, rho0 = eps = 0.5 m; runtimes in "
              "milliseconds of simulated time.");

  protocol::DelphiParams params = protocol::DelphiParams::drone_cps();

  // --xl extends the sweep past the paper's largest point (n = 169) to
  // n = 211 — impractical with the pre-optimization event engine, now a
  // routine run; see ROADMAP "simulator internals".
  std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{43, 85}
            : std::vector<std::size_t>{43, 85, 127, 169};
  if (xl) sizes.push_back(211);

  const std::vector<int> w = {8, 22, 14, 12, 12};
  print_row({"n", "protocol", "runtime_ms", "MB", "ok"}, w);

  // The sweep's runs are independent deterministic simulations, so they fan
  // across all cores via SweepRunner (results identical to serial execution;
  // only wall time changes).
  std::vector<scenario::ScenarioSpec> specs;
  for (std::size_t n : sizes) {
    const auto in5 = clustered_inputs(n, 0.0, 5.0, 3 + n);
    const auto in50 = clustered_inputs(n, 0.0, 50.0, 5 + n);
    specs.push_back(delphi_spec(Testbed::kCps, n, 1, params, in5));
    specs.push_back(delphi_spec(Testbed::kCps, n, 2, params, in50));
    specs.push_back(fin_spec(Testbed::kCps, n, 3, in5));
    specs.push_back(abraham_spec(Testbed::kCps, n, 4, /*rounds=*/7, -1000.0,
                                 1000.0, in5));
  }
  const auto results = run_specs(specs);

  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const std::size_t n = sizes[i];
    const auto& d5 = results[4 * i];
    const auto& d50 = results[4 * i + 1];
    const auto& f = results[4 * i + 2];
    const auto& a = results[4 * i + 3];
    print_row({std::to_string(n), "Delphi delta=5m", fmt(d5.runtime_ms, 0),
               fmt(d5.megabytes, 2), d5.ok ? "y" : "N"},
              w);
    print_row({std::to_string(n), "Delphi delta=50m", fmt(d50.runtime_ms, 0),
               fmt(d50.megabytes, 2), d50.ok ? "y" : "N"},
              w);
    print_row({std::to_string(n), "FIN", fmt(f.runtime_ms, 0),
               fmt(f.megabytes, 2), f.ok ? "y" : "N"},
              w);
    print_row({std::to_string(n), "Abraham et al. d=5m",
               fmt(a.runtime_ms, 0), fmt(a.megabytes, 2), a.ok ? "y" : "N"},
              w);
    std::printf(
        "  speedup at n=%zu: FIN/Delphi = %.2fx, Abraham/Delphi = %.2fx, "
        "Delphi d=50m/d=5m = %.2fx\n",
        n, f.runtime_ms / d5.runtime_ms, a.runtime_ms / d5.runtime_ms,
        d50.runtime_ms / d5.runtime_ms);
  }
  std::printf(
      "\npaper shape: Delphi is faster at every n here (compute/bandwidth "
      "bound testbed), ~8x at n = 169; higher delta visibly slows Delphi on "
      "CPS, unlike on AWS.\n");
  return 0;
}
