/// Ablation: how much of FIN's runtime is the common coin?
///
/// The paper's §I motivation: threshold-coin implementations cost O(n)
/// pairings per toss, each ~1000x a symmetric-crypto operation, and this is
/// what makes randomized protocols "computationally expensive" on CPS-class
/// hardware. This bench sweeps the simulated per-coin CPU charge from free
/// (an oracle coin) through x86-pairing to Pi-pairing costs and compares the
/// FIN-style ACS against Delphi (which never tosses a coin).
///
/// Reproduction target: on AWS (fast cores, slow WAN) the coin barely
/// matters; on CPS (slow cores, fast LAN) it dominates — the regime split of
/// Fig 6a vs Fig 6c, isolated to the single parameter that causes it.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

protocol::DelphiParams cps_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 2000.0;
  p.rho0 = 0.5;
  p.eps = 0.5;
  p.delta_max = 50.0;
  return p;
}

protocol::DelphiParams aws_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 200'000.0;
  p.rho0 = 10.0;
  p.eps = 2.0;
  p.delta_max = 2000.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::size_t n = quick ? 16 : 40;

  print_title("Ablation — FIN runtime vs common-coin compute cost",
              "Per-pairing CPU charge swept from 0 (free oracle coin) to "
              "4 ms (Cortex-A72); a coin toss verifies n/3+1 shares. Delphi "
              "rows are coin-free references.");

  const std::vector<int> w = {8, 24, 14, 14};
  // Per-pairing µs charges: oracle, cheap x86, t2.micro, Pi-class.
  const std::vector<double> pairing_us = {0.0, 50.0, 250.0, 4000.0};

  for (const Testbed tb : {Testbed::kAws, Testbed::kCps}) {
    const char* tb_name = tb == Testbed::kAws ? "AWS" : "CPS";
    const auto params = tb == Testbed::kAws ? aws_params() : cps_params();
    const double delta = tb == Testbed::kAws ? 20.0 : 5.0;
    const double center = tb == Testbed::kAws ? 40'000.0 : 1000.0;
    const auto inputs = clustered_inputs(n, center, delta, 23);

    std::printf("-- %s testbed, n = %zu --\n", tb_name, n);
    print_row({"testbed", "config", "runtime_ms", "vs free"}, w);

    double free_ms = 0.0;
    for (double us : pairing_us) {
      const auto cost = static_cast<SimTime>(
          us * (static_cast<double>(n) / 3.0 + 1.0));
      const auto f = run_fin(tb, n, 31, inputs, cost);
      if (us == 0.0) free_ms = f.runtime_ms;
      print_row({tb_name, "FIN, pairing = " + fmt(us / 1000.0, 2) + " ms",
                 fmt(f.runtime_ms, 0),
                 fmt(f.runtime_ms / free_ms, 2) + "x"},
                w);
    }
    const auto d = run_delphi(tb, n, 37, params, inputs);
    print_row({tb_name, "Delphi (no coin)", fmt(d.runtime_ms, 0), "-"}, w);
    std::printf("\n");
  }

  std::printf(
      "expected shape: the coin charge is a rounding error on AWS (WAN RTT\n"
      "dominates) but multiplies FIN's CPS runtime several-fold at Pi-class\n"
      "pairing costs — the computational-efficiency argument of §I/§VI-D,\n"
      "isolated from every other protocol difference.\n");
  return 0;
}
