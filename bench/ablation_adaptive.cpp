/// Ablation: static vs adaptive ∆ over a drifting feed.
///
/// The paper calibrates ∆ offline from two weeks of data and freezes it
/// (§VI-A). This bench quantifies what that costs when volatility drifts,
/// by replaying a three-regime feed (calm → normal → stressed) through:
///   * static-tight  — ∆ calibrated to the calm regime (cheap, unsafe);
///   * static-safe   — ∆ sized for the stressed regime (safe, always pays
///                     the full level ladder);
///   * adaptive      — src/adaptive re-fits ∆ from a rolling window.
/// Reported per config: eps-agreement violations (the δ ≤ ∆ assumption
/// breaking in practice), mean per-agreement runtime, and mean r_max
/// (the round bill ∆ drives).

#include <algorithm>
#include <cstdio>

#include "adaptive/range_estimator.hpp"
#include "bench/bench_util.hpp"
#include "stats/distributions.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

struct Tally {
  std::size_t minutes = 0;
  std::size_t violations = 0;
  double total_ms = 0.0;
  double total_rmax = 0.0;
  double total_levels = 0.0;
};

protocol::DelphiParams params_for(double delta_max) {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 200'000.0;
  p.rho0 = 2.0;
  p.eps = 2.0;
  p.delta_max = delta_max;
  return p;
}

void run_minute(Tally& t, const protocol::DelphiParams& p, std::size_t n,
                std::uint64_t seed, double center, double delta) {
  const auto inputs = clustered_inputs(n, center, delta, seed);
  const auto r = run_delphi(Testbed::kAws, n, seed, p, inputs);
  ++t.minutes;
  if (!r.ok || r.outputs.empty()) {
    ++t.violations;
    return;
  }
  const auto [mn, mx] = std::minmax_element(r.outputs.begin(), r.outputs.end());
  if (*mx - *mn > p.eps + 1e-9) ++t.violations;
  t.total_ms += r.runtime_ms;
  protocol::DelphiProtocol::Config c;
  c.n = n;
  c.t = max_faults(n);
  c.params = p;
  const protocol::DelphiProtocol probe(c, center);
  t.total_rmax += probe.r_max();
  t.total_levels += p.num_levels();
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  const std::size_t n = 7;
  const std::size_t minutes = quick ? 45 : 150;

  print_title("Ablation — static vs adaptive Delta over a drifting feed",
              "Three equal volatility regimes (calm/normal/stressed); "
              "violations = minutes where outputs spread past eps because "
              "delta exceeded Delta.");

  const stats::Frechet calm(4.41, 3.0);
  const stats::Frechet normal(4.41, 29.3);
  const stats::Frechet stressed(2.5, 500.0);  // crash-day tails: δ up to ~4000$

  // Static-tight: the calm-regime calibration (lambda 20 on calm data).
  const auto tight = params_for(60.0);
  // Static-safe: sized for the stressed regime's tail.
  const auto safe = params_for(16'000.0);

  adaptive::RangeEstimator::Options opt;
  opt.window = 512;
  opt.min_samples = 16;
  opt.lambda_bits = 20.0;
  opt.fallback_delta = 60.0;
  opt.safety_factor = 1.25;
  opt.max_delta = 16'000.0;
  opt.refit_interval = 8;
  adaptive::RangeEstimator estimator(opt);

  Tally t_tight, t_safe, t_adaptive;
  Rng rng(2026);
  double mid = 40'000.0;
  for (std::size_t m = 0; m < minutes; ++m) {
    const stats::Frechet& regime = m < minutes / 3
                                       ? calm
                                       : (m < 2 * minutes / 3 ? normal
                                                              : stressed);
    const double delta = regime.sample(rng);
    mid += rng.uniform(-15.0, 15.0);
    const std::uint64_t seed = 100 + m;

    run_minute(t_tight, tight, n, seed, mid, delta);
    run_minute(t_safe, safe, n, seed, mid, delta);
    const auto adaptive_params =
        estimator.make_params(0.0, 200'000.0, 2.0, 2.0);
    run_minute(t_adaptive, adaptive_params, n, seed, mid, delta);
    estimator.observe(delta);  // the estimator sees δ after the round
  }

  const std::vector<int> w = {26, 12, 14, 12, 10};
  print_row({"config", "violations", "mean_ms", "mean_rmax", "levels"}, w);
  const auto show = [&](const char* name, const Tally& t) {
    const double ok = static_cast<double>(t.minutes - t.violations);
    print_row({name,
               fmt_int(t.violations) + "/" + fmt_int(t.minutes),
               fmt(ok > 0 ? t.total_ms / ok : 0.0, 0),
               fmt(ok > 0 ? t.total_rmax / ok : 0.0, 1),
               fmt(ok > 0 ? t.total_levels / ok : 0.0, 1)},
              w);
  };
  show("static-tight (D=60$)", t_tight);
  show("static-safe (D=16000$)", t_safe);
  show("adaptive (rolling EVT)", t_adaptive);

  std::printf(
      "\nexpected shape: static-tight violates agreement once the stressed\n"
      "regime's delta exceeds its Delta; static-safe never violates but\n"
      "pays the deepest level ladder and round bill every minute; adaptive\n"
      "sits between — near-tight cost in calm regimes, near-safe coverage\n"
      "under stress (modulo the one-regime-change lag of its window).\n");
  return 0;
}
