/// Ablation: BinAA's plain value codec vs the paper's compact VAL move-code
/// encoding (§II-C). The compact codec shrinks each echo to kind+move-byte
/// plus the round number — the paper's
/// O(n² log(1/e) loglog(1/e)) refinement over O(n² log²(1/e)).

#include <cstdio>

#include "bench/bench_util.hpp"
#include "binaa/protocol.hpp"
#include "sim/harness.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

std::uint64_t run_binaa_bytes(std::size_t n, std::uint32_t r_max, bool compact,
                              std::uint64_t seed) {
  auto cfg = testbed_config(Testbed::kAws, n, seed);
  cfg.fifo_links = compact;  // the delta codec requires FIFO links
  binaa::BinAaProtocol::Config pc;
  pc.core = binaa::BinAaCore::Config{n, max_faults(n), r_max};
  pc.compact = compact;
  auto out = sim::run_nodes(cfg, [&](NodeId i) {
    return std::make_unique<binaa::BinAaProtocol>(pc, i % 2 == 0);
  });
  return out.all_honest_terminated ? out.honest_bytes : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Ablation — BinAA plain vs compact (VAL) codec",
              "bytes for one BinAA instance (split inputs) across rounds; "
              "compact mode uses FIFO links + 3-bit move codes.");

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 40};
  const std::vector<int> w = {8, 10, 14, 14, 10};
  print_row({"n", "rounds", "plain_bytes", "compact_bytes", "saving"}, w);

  for (std::size_t n : sizes) {
    for (std::uint32_t r_max : {8u, 16u, 24u}) {
      const auto plain = run_binaa_bytes(n, r_max, false, 3);
      const auto compact = run_binaa_bytes(n, r_max, true, 3);
      print_row({std::to_string(n), std::to_string(r_max),
                 fmt_int(plain), fmt_int(compact),
                 fmt(100.0 * (1.0 - static_cast<double>(compact) /
                                        static_cast<double>(plain)),
                     1) + "%"},
                w);
    }
  }
  std::printf(
      "\nnote: with 32-byte HMAC tags dominating small frames, payload "
      "savings are bounded; disable auth to see the raw codec effect.\n");
  return 0;
}
