/// Ablation: the resilience / communication / validity trade across the
/// three asynchronous AA designs the paper situates itself against (§III-A,
/// §VII):
///
///   Dolev et al. '86   n = 5t+1, pure multicast, O(n²ℓ) bits/round, strict
///                      convex validity — resilience paid for communication;
///   Abraham et al.'04  n = 3t+1, RBC + witnesses, O(n³ℓ) bits/round, strict
///                      convex validity — communication paid for resilience;
///   Delphi             n = 3t+1, checkpoint BinAA, Õ(n²) bits/round,
///                      *relaxed* validity — validity paid for both.
///
/// Two sweeps: (a) matched fault budget t (each protocol at its minimum n),
/// the "how many machines does tolerating t faults cost" view; (b) matched
/// system size n = 16, the "what does a fixed fleet buy" view.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

namespace {

protocol::DelphiParams oracle_params() {
  protocol::DelphiParams p;
  p.space_min = 0.0;
  p.space_max = 200'000.0;
  p.rho0 = 10.0;
  p.eps = 2.0;
  p.delta_max = 2000.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Ablation — resilience vs communication vs validity",
              "Dolev (5t+1) / Abraham (3t+1) / Delphi (3t+1, relaxed "
              "validity) on the AWS testbed, delta = 20$ oracle workload.");

  const auto params = oracle_params();
  const std::vector<int> w = {6, 6, 24, 14, 12, 10};

  std::printf("(a) matched fault budget t — each protocol at its minimum n\n");
  print_row({"t", "n", "protocol", "runtime_ms", "MB", "validity"}, w);
  const std::vector<std::size_t> budgets =
      quick ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 3, 5};
  for (std::size_t t : budgets) {
    const std::size_t n5 = 5 * t + 1;
    const std::size_t n3 = 3 * t + 1;
    const auto in5 = clustered_inputs(n5, 40'000.0, 20.0, 11 + t);
    const auto in3 = clustered_inputs(n3, 40'000.0, 20.0, 13 + t);

    const auto d = run_dolev(Testbed::kAws, n5, 1, /*rounds=*/10, 0.0,
                             200'000.0, in5);
    print_row({std::to_string(t), std::to_string(n5), "Dolev et al.",
               fmt(d.runtime_ms, 0), fmt(d.megabytes, 3), "[m, M]"},
              w);
    const auto a = run_abraham(Testbed::kAws, n3, 2, /*rounds=*/10, 0.0,
                               200'000.0, in3);
    print_row({std::to_string(t), std::to_string(n3), "Abraham et al.",
               fmt(a.runtime_ms, 0), fmt(a.megabytes, 3), "[m, M]"},
              w);
    const auto dp = run_delphi(Testbed::kAws, n3, 3, params, in3);
    print_row({std::to_string(t), std::to_string(n3), "Delphi",
               fmt(dp.runtime_ms, 0), fmt(dp.megabytes, 3), "relaxed"},
              w);
  }

  std::printf("\n(b) matched system size n = 16 — fault budget differs\n");
  print_row({"t", "n", "protocol", "runtime_ms", "MB", "validity"}, w);
  {
    const std::size_t n = 16;
    const auto in = clustered_inputs(n, 40'000.0, 20.0, 17);
    const auto d = run_dolev(Testbed::kAws, n, 4, /*rounds=*/10, 0.0,
                             200'000.0, in);
    print_row({"3", std::to_string(n), "Dolev et al.", fmt(d.runtime_ms, 0),
               fmt(d.megabytes, 3), "[m, M]"},
              w);
    const auto a = run_abraham(Testbed::kAws, n, 5, /*rounds=*/10, 0.0,
                               200'000.0, in);
    print_row({"5", std::to_string(n), "Abraham et al.", fmt(a.runtime_ms, 0),
               fmt(a.megabytes, 3), "[m, M]"},
              w);
    const auto dp = run_delphi(Testbed::kAws, n, 6, params, in);
    print_row({"5", std::to_string(n), "Delphi", fmt(dp.runtime_ms, 0),
               fmt(dp.megabytes, 3), "relaxed"},
              w);
  }

  std::printf(
      "\nexpected shape: Dolev is the traffic floor throughout but needs\n"
      "~67%% more machines per fault; Abraham and Delphi share optimal\n"
      "resilience, with Delphi's bytes at parity or above at these small n\n"
      "(its per-round constants dominate) and pulling decisively ahead as n\n"
      "grows — table1_complexity measures the n^2.2-vs-n^3.0 separation that\n"
      "makes Delphi the large-n winner; the validity column is what it\n"
      "trades for that.\n");
  return 0;
}
