/// Regenerates Fig 6a: runtime vs n on the (simulated) geo-distributed AWS
/// testbed for the oracle-network workload.
///
/// Paper config: Delphi rho0 = 10$, Delta = 2000$, eps = 2$, curves for
/// delta = 20$ and delta = 180$; baselines FIN and Abraham et al. at
/// delta = 20$.
///
/// Reproduction target (shape): Delphi is *slower* at small n (round count x
/// WAN RTT dominates), scales much flatter, and wins by roughly 3-6x at
/// n = 160; Delphi's runtime barely moves with delta on AWS.

#include <cstdio>

#include "bench/bench_util.hpp"

using namespace delphi;
using namespace delphi::bench;

int main(int argc, char** argv) {
  const bool quick = quick_mode(argc, argv);
  print_title("Fig 6a — runtime vs n on AWS (oracle network)",
              "Delphi config rho0 = 10$, Delta = 2000$, eps = 2$; runtimes in "
              "milliseconds of simulated time (see EXPERIMENTS.md for the "
              "testbed model).");

  protocol::DelphiParams params;
  params.space_min = 0.0;
  params.space_max = 200'000.0;
  params.rho0 = 10.0;
  params.eps = 2.0;
  params.delta_max = 2000.0;

  const std::vector<std::size_t> sizes =
      quick ? std::vector<std::size_t>{16, 64}
            : std::vector<std::size_t>{16, 64, 112, 160};

  const std::vector<int> w = {8, 22, 14, 12, 12};
  print_row({"n", "protocol", "runtime_ms", "MB", "ok"}, w);

  for (std::size_t n : sizes) {
    const auto in20 = clustered_inputs(n, 40'000.0, 20.0, 7 + n);
    const auto in180 = clustered_inputs(n, 40'000.0, 180.0, 9 + n);

    const auto d20 = run_delphi(Testbed::kAws, n, 1, params, in20);
    print_row({std::to_string(n), "Delphi delta=20$", fmt(d20.runtime_ms, 0),
               fmt(d20.megabytes, 2), d20.ok ? "y" : "N"},
              w);
    const auto d180 = run_delphi(Testbed::kAws, n, 2, params, in180);
    print_row({std::to_string(n), "Delphi delta=180$",
               fmt(d180.runtime_ms, 0), fmt(d180.megabytes, 2),
               d180.ok ? "y" : "N"},
              w);
    const auto f = run_fin(Testbed::kAws, n, 3, in20);
    print_row({std::to_string(n), "FIN", fmt(f.runtime_ms, 0),
               fmt(f.megabytes, 2), f.ok ? "y" : "N"},
              w);
    const auto a = run_abraham(Testbed::kAws, n, 4, /*rounds=*/10, 0.0,
                               200'000.0, in20);
    print_row({std::to_string(n), "Abraham et al. d=20$",
               fmt(a.runtime_ms, 0), fmt(a.megabytes, 2), a.ok ? "y" : "N"},
              w);
    std::printf("  speedup at n=%zu: FIN/Delphi = %.2fx, Abraham/Delphi = "
                "%.2fx\n",
                n, f.runtime_ms / d20.runtime_ms,
                a.runtime_ms / d20.runtime_ms);
  }
  std::printf(
      "\npaper shape: Delphi slower at n = 16, ~3x faster than FIN and ~6x "
      "faster than Abraham at n = 160; delta barely affects Delphi on "
      "AWS.\n");
  return 0;
}
